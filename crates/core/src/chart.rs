//! Chart generation (paper §3.3.10): the combined time chart, the
//! performance-vs-processes chart and the performance-vs-nodes chart.
//!
//! The paper delegates plotting to Ploticus; this reproduction renders the
//! same three chart types itself — as ASCII for terminals and test
//! assertions, and as standalone SVG for reports — with automatic axis
//! scaling.

use crate::preprocess::Preprocessed;

/// A named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

const MARKERS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

fn bounds(series: &[Series]) -> (f64, f64, f64, f64) {
    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() {
        (0.0, 1.0, 0.0, 1.0)
    } else {
        let ymin = ymin.min(0.0);
        (
            xmin,
            if xmax > xmin { xmax } else { xmin + 1.0 },
            ymin,
            if ymax > ymin { ymax } else { ymin + 1.0 },
        )
    }
}

/// Render series as an ASCII chart of roughly `width`×`height` characters.
pub fn ascii_chart(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    let width = width.max(20);
    let height = height.max(5);
    let (xmin, xmax, ymin, ymax) = bounds(series);
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(x, y) in &s.points {
            let gx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let gy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - gy.min(height - 1);
            grid[row][gx.min(width - 1)] = marker;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("{ylabel} (max {ymax:.0})\n"));
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!("{xlabel}: {xmin:.2} .. {xmax:.2}\n"));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKERS[si % MARKERS.len()], s.label));
    }
    out
}

/// Render series as a standalone SVG document.
pub fn svg_chart(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    let (xmin, xmax, ymin, ymax) = bounds(series);
    let (w, h) = (width.max(200) as f64, height.max(150) as f64);
    let (ml, mr, mt, mb) = (60.0, 20.0, 30.0, 45.0);
    let px = |x: f64| ml + (x - xmin) / (xmax - xmin) * (w - ml - mr);
    let py = |y: f64| h - mb - (y - ymin) / (ymax - ymin) * (h - mt - mb);
    let colors = [
        "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
    ];
    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">
<rect width="{w}" height="{h}" fill="white"/>
<text x="{tx}" y="18" text-anchor="middle" font-family="sans-serif" font-size="13">{title}</text>
"#,
        tx = w / 2.0,
    );
    // axes
    svg.push_str(&format!(
        r#"<line x1="{ml}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>
<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{y0}" stroke="black"/>
"#,
        y0 = h - mb,
        x1 = w - mr,
    ));
    // ticks: 5 on each axis
    for k in 0..=4 {
        let xv = xmin + (xmax - xmin) * k as f64 / 4.0;
        let yv = ymin + (ymax - ymin) * k as f64 / 4.0;
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-family="sans-serif" font-size="10">{:.4}</text>
"#,
            px(xv),
            h - mb + 14.0,
            trim_num(xv)
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-family="sans-serif" font-size="10">{:.4}</text>
"#,
            ml - 4.0,
            py(yv) + 3.0,
            trim_num(yv)
        ));
    }
    svg.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-family="sans-serif" font-size="11">{xlabel}</text>
<text x="14" y="{:.1}" text-anchor="middle" font-family="sans-serif" font-size="11" transform="rotate(-90 14 {cy:.1})">{ylabel}</text>
"#,
        w / 2.0,
        h - 6.0,
        (h - mb + mt) / 2.0,
        cy = (h - mb + mt) / 2.0,
    ));
    for (si, s) in series.iter().enumerate() {
        let color = colors[si % colors.len()];
        if s.points.len() > 1 {
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            svg.push_str(&format!(
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>
"#,
                pts.join(" ")
            ));
        }
        for &(x, y) in &s.points {
            svg.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="{color}"/>
"#,
                px(x),
                py(y)
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" fill="{color}">{}</text>
"#,
            w - mr - 150.0,
            mt + 14.0 * (si as f64 + 1.0),
            s.label
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

fn trim_num(v: f64) -> f64 {
    // keep tick labels short
    if v.abs() >= 100.0 {
        v.round()
    } else {
        (v * 100.0).round() / 100.0
    }
}

/// The combined time chart of §3.3.10 / Fig. 3.11: operations completed,
/// per-process COV, and total throughput as functions of time (ASCII).
pub fn time_chart(pre: &Preprocessed) -> String {
    let completed = Series::new(
        "operations completed",
        pre.intervals
            .iter()
            .map(|r| (r.timestamp, r.total_done as f64))
            .collect(),
    );
    let cov = Series::new(
        "per-process ops/s coefficient of variation",
        pre.intervals.iter().map(|r| (r.timestamp, r.cov)).collect(),
    );
    let tp = Series::new(
        "operations/s",
        pre.intervals
            .iter()
            .map(|r| (r.timestamp, r.throughput))
            .collect(),
    );
    let title = format!("{} — {} nodes × {} ppn", pre.operation, pre.nodes, pre.ppn);
    let mut out = String::new();
    out.push_str(&ascii_chart(
        &title,
        "time [s]",
        "Operations Completed",
        &[completed],
        70,
        12,
    ));
    out.push_str(&ascii_chart("", "time [s]", "COV", &[cov], 70, 8));
    out.push_str(&ascii_chart("", "time [s]", "Operations/s", &[tp], 70, 12));
    out
}

/// The combined time chart as a single SVG with three stacked panels.
pub fn svg_time_chart(pre: &Preprocessed) -> String {
    let title = format!("{} — {} nodes × {} ppn", pre.operation, pre.nodes, pre.ppn);
    let completed = Series::new(
        "completed",
        pre.intervals
            .iter()
            .map(|r| (r.timestamp, r.total_done as f64))
            .collect(),
    );
    let cov = Series::new(
        "COV",
        pre.intervals.iter().map(|r| (r.timestamp, r.cov)).collect(),
    );
    let tp = Series::new(
        "ops/s",
        pre.intervals
            .iter()
            .map(|r| (r.timestamp, r.throughput))
            .collect(),
    );
    let p1 = svg_chart(
        &title,
        "time [s]",
        "Operations Completed",
        &[completed],
        640,
        220,
    );
    let p2 = svg_chart("", "time [s]", "COV", &[cov], 640, 160);
    let p3 = svg_chart("", "time [s]", "Operations/s", &[tp], 640, 220);
    // stack by wrapping into one outer SVG
    format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="640" height="600">
<g transform="translate(0,0)">{p1}</g>
<g transform="translate(0,220)">{p2}</g>
<g transform="translate(0,380)">{p3}</g>
</svg>
"#
    )
}

/// Performance-vs-processes chart (Fig. 3.12): one point per measurement,
/// several measurements comparable as separate series.
pub fn processes_chart(series: &[Series]) -> String {
    ascii_chart(
        "Performance vs. number of processes",
        "Number of processes",
        "Total operations/s",
        series,
        70,
        14,
    )
}

/// Performance-vs-nodes chart (Fig. 3.13).
pub fn nodes_chart(series: &[Series]) -> String {
    ascii_chart(
        "Performance vs. number of nodes",
        "Number of nodes",
        "Total operations/s",
        series,
        70,
        14,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series::new("fs A", vec![(1.0, 100.0), (2.0, 190.0), (4.0, 350.0)]),
            Series::new("fs B", vec![(1.0, 80.0), (2.0, 90.0), (4.0, 95.0)]),
        ]
    }

    #[test]
    fn ascii_chart_contains_markers_and_legend() {
        let c = ascii_chart("demo", "x", "y", &demo_series(), 40, 10);
        assert!(c.contains('*'));
        assert!(c.contains('+'));
        assert!(c.contains("fs A"));
        assert!(c.contains("fs B"));
        assert!(c.contains("x: 1.00 .. 4.00"));
    }

    #[test]
    fn svg_chart_is_wellformed() {
        let svg = svg_chart("demo", "x", "y", &demo_series(), 640, 480);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn empty_series_do_not_panic() {
        let c = ascii_chart("empty", "x", "y", &[], 40, 10);
        assert!(c.contains("empty"));
        let svg = svg_chart("empty", "x", "y", &[], 300, 200);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn single_point_series() {
        let s = [Series::new("one", vec![(5.0, 5.0)])];
        let c = ascii_chart("one", "x", "y", &s, 40, 10);
        assert!(c.contains('*'));
        let svg = svg_chart("one", "x", "y", &s, 300, 200);
        assert!(svg.contains("circle"));
        assert!(!svg.contains("polyline"), "no line for a single point");
    }

    #[test]
    fn charts_from_preprocessed() {
        use crate::preprocess::preprocess;
        use crate::result::{ProcessTrace, ResultSet};
        let rs = ResultSet {
            operation: "MakeFiles".into(),
            fs_name: "nfs".into(),
            nodes: 1,
            ppn: 1,
            interval_s: 0.1,
            processes: vec![ProcessTrace {
                hostname: "h".into(),
                process_no: 0,
                samples: vec![(0.1, 10), (0.2, 30), (0.3, 60)],
                finished_at: Some(0.3),
                ops_done: 60,
                errors: 0,
            }],
        };
        let pre = preprocess(&rs, &[]);
        let tc = time_chart(&pre);
        assert!(tc.contains("MakeFiles"));
        assert!(tc.contains("Operations Completed"));
        assert!(tc.contains("COV"));
        let svg = svg_time_chart(&pre);
        assert!(svg.matches("<svg").count() >= 3, "three stacked panels");
    }
}
