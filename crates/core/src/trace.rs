//! Trace-based benchmarking (paper §3.1.2).
//!
//! The thesis surveys trace tools (LADDIS/SPEC SFS, TBBT) and their scaling
//! techniques: a **spatial scale-up** replays a recorded operation sequence
//! in disjoint directories to multiply the load, a temporal scale-up replays
//! it faster. This module provides an operation-level trace format, a
//! writer/parser, and the [`TraceReplay`] plugin:
//!
//! * one operation per line (`create /dir/f 64`, `rename /a /b`, …),
//! * `$W` at the start of a path substitutes the worker's private working
//!   directory — replaying the same trace with N workers is exactly TBBT's
//!   spatial scale-up on disjoint directories,
//! * replay is closed-loop at maximum speed (each worker issues the next
//!   operation as soon as the previous completes), which corresponds to
//!   TBBT's maximal temporal scale-up.
//!
//! # Example
//!
//! ```
//! use dmetabench::trace::{parse_trace, write_trace};
//! use dfs::MetaOp;
//!
//! let ops = vec![
//!     MetaOp::Mkdir { path: "$W/dir".into() },
//!     MetaOp::Create { path: "$W/dir/f".into(), data_bytes: 64 },
//!     MetaOp::Rename { from: "$W/dir/f".into(), to: "$W/dir/g".into() },
//! ];
//! let text = write_trace(&ops);
//! assert_eq!(parse_trace(&text).unwrap(), ops);
//! ```

use dfs::MetaOp;

use crate::params::WorkerCtx;
use crate::plugin::{BenchmarkPlugin, ProblemMode};

/// Serialize operations into the one-line-per-op trace format.
pub fn write_trace(ops: &[MetaOp]) -> String {
    let mut out = String::from("# dmetabench operation trace v1\n");
    for op in ops {
        let line = match op {
            MetaOp::Create { path, data_bytes } => format!("create {path} {data_bytes}"),
            MetaOp::Mkdir { path } => format!("mkdir {path}"),
            MetaOp::Unlink { path } => format!("unlink {path}"),
            MetaOp::Rmdir { path } => format!("rmdir {path}"),
            MetaOp::Stat { path } => format!("stat {path}"),
            MetaOp::OpenClose { path } => format!("openclose {path}"),
            MetaOp::Readdir { path } => format!("readdir {path}"),
            MetaOp::Rename { from, to } => format!("rename {from} {to}"),
            MetaOp::Link { existing, new } => format!("link {existing} {new}"),
            MetaOp::Symlink { target, linkpath } => format!("symlink {target} {linkpath}"),
            MetaOp::Chmod { path, mode } => format!("chmod {path} {mode:o}"),
            MetaOp::Utimes {
                path,
                atime_ns,
                mtime_ns,
            } => format!("utimes {path} {atime_ns} {mtime_ns}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parse a trace produced by [`write_trace`] (or written by hand).
///
/// Empty lines and `#` comments are ignored.
///
/// # Errors
///
/// Returns `"line N: <problem>"` for the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<MetaOp>, String> {
    let mut ops = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let verb = parts.next().expect("non-empty line has a first token");
        let mut arg = |name: &str| -> Result<String, String> {
            parts
                .next()
                .map(str::to_owned)
                .ok_or_else(|| format!("line {}: {verb} needs {name}", no + 1))
        };
        let op = match verb {
            "create" => {
                let path = arg("a path")?;
                let bytes: u64 = arg("a byte count")?
                    .parse()
                    .map_err(|e| format!("line {}: bad byte count: {e}", no + 1))?;
                MetaOp::Create {
                    path,
                    data_bytes: bytes,
                }
            }
            "mkdir" => MetaOp::Mkdir {
                path: arg("a path")?,
            },
            "unlink" => MetaOp::Unlink {
                path: arg("a path")?,
            },
            "rmdir" => MetaOp::Rmdir {
                path: arg("a path")?,
            },
            "stat" => MetaOp::Stat {
                path: arg("a path")?,
            },
            "openclose" => MetaOp::OpenClose {
                path: arg("a path")?,
            },
            "readdir" => MetaOp::Readdir {
                path: arg("a path")?,
            },
            "rename" => MetaOp::Rename {
                from: arg("a source")?,
                to: arg("a destination")?,
            },
            "link" => MetaOp::Link {
                existing: arg("an existing path")?,
                new: arg("a new path")?,
            },
            "symlink" => MetaOp::Symlink {
                target: arg("a target")?,
                linkpath: arg("a link path")?,
            },
            "chmod" => {
                let path = arg("a path")?;
                let mode = u32::from_str_radix(&arg("an octal mode")?, 8)
                    .map_err(|e| format!("line {}: bad mode: {e}", no + 1))?;
                MetaOp::Chmod { path, mode }
            }
            "utimes" => {
                let path = arg("a path")?;
                let atime_ns: u64 = arg("an atime")?
                    .parse()
                    .map_err(|e| format!("line {}: bad atime: {e}", no + 1))?;
                let mtime_ns: u64 = arg("an mtime")?
                    .parse()
                    .map_err(|e| format!("line {}: bad mtime: {e}", no + 1))?;
                MetaOp::Utimes {
                    path,
                    atime_ns,
                    mtime_ns,
                }
            }
            other => return Err(format!("line {}: unknown operation '{other}'", no + 1)),
        };
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", no + 1));
        }
        ops.push(op);
    }
    Ok(ops)
}

fn substitute(path: &str, workdir: &str) -> String {
    match path.strip_prefix("$W") {
        Some(rest) => format!("{workdir}{rest}"),
        None => path.to_owned(),
    }
}

fn substitute_op(op: &MetaOp, workdir: &str) -> MetaOp {
    let mut op = op.clone();
    match &mut op {
        MetaOp::Create { path, .. }
        | MetaOp::Mkdir { path }
        | MetaOp::Unlink { path }
        | MetaOp::Rmdir { path }
        | MetaOp::Stat { path }
        | MetaOp::OpenClose { path }
        | MetaOp::Readdir { path }
        | MetaOp::Chmod { path, .. }
        | MetaOp::Utimes { path, .. } => *path = substitute(path, workdir),
        MetaOp::Rename { from, to } => {
            *from = substitute(from, workdir);
            *to = substitute(to, workdir);
        }
        MetaOp::Link { existing, new } => {
            *existing = substitute(existing, workdir);
            *new = substitute(new, workdir);
        }
        MetaOp::Symlink { target, linkpath } => {
            *target = substitute(target, workdir);
            *linkpath = substitute(linkpath, workdir);
        }
    }
    op
}

/// A plugin that replays a recorded trace — with TBBT-style spatial scale-up
/// when the trace uses `$W` paths.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    ops: std::sync::Arc<Vec<MetaOp>>,
    repeat: u64,
}

impl TraceReplay {
    /// Replay `ops` once per worker.
    pub fn new(ops: Vec<MetaOp>) -> Self {
        TraceReplay {
            ops: std::sync::Arc::new(ops),
            repeat: 1,
        }
    }

    /// Replay the trace `repeat` times back to back (`$W` keeps runs of the
    /// same worker in the same directory, so repeated traces must be
    /// idempotent or self-cleaning).
    pub fn with_repeat(mut self, repeat: u64) -> Self {
        self.repeat = repeat.max(1);
        self
    }

    /// Parse a trace text and build the plugin.
    ///
    /// # Errors
    ///
    /// Propagates [`parse_trace`] errors.
    pub fn from_text(text: &str) -> Result<Self, String> {
        Ok(Self::new(parse_trace(text)?))
    }

    /// Operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl BenchmarkPlugin for TraceReplay {
    fn name(&self) -> &'static str {
        "TraceReplay"
    }

    fn mode(&self) -> ProblemMode {
        ProblemMode::Fixed
    }

    fn stream(&self, ctx: &WorkerCtx) -> Box<dyn FnMut(u64) -> Option<MetaOp> + Send> {
        let ops = std::sync::Arc::clone(&self.ops);
        let workdir = ctx.workdir.clone();
        let total = self.ops.len() as u64 * self.repeat;
        Box::new(move |i| {
            if i < total && !ops.is_empty() {
                let op = &ops[(i % ops.len() as u64) as usize];
                Some(substitute_op(op, &workdir))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BenchParams;

    fn all_op_kinds() -> Vec<MetaOp> {
        vec![
            MetaOp::Mkdir {
                path: "$W/d".into(),
            },
            MetaOp::Create {
                path: "$W/d/f".into(),
                data_bytes: 64,
            },
            MetaOp::Stat {
                path: "$W/d/f".into(),
            },
            MetaOp::OpenClose {
                path: "$W/d/f".into(),
            },
            MetaOp::Readdir {
                path: "$W/d".into(),
            },
            MetaOp::Chmod {
                path: "$W/d/f".into(),
                mode: 0o640,
            },
            MetaOp::Utimes {
                path: "$W/d/f".into(),
                atime_ns: 7,
                mtime_ns: 8,
            },
            MetaOp::Link {
                existing: "$W/d/f".into(),
                new: "$W/d/h".into(),
            },
            MetaOp::Symlink {
                target: "$W/d/f".into(),
                linkpath: "$W/d/s".into(),
            },
            MetaOp::Rename {
                from: "$W/d/h".into(),
                to: "$W/d/r".into(),
            },
            MetaOp::Unlink {
                path: "$W/d/r".into(),
            },
            MetaOp::Rmdir {
                path: "$W/e".into(),
            },
        ]
    }

    #[test]
    fn roundtrip_every_op_kind() {
        let ops = all_op_kinds();
        let text = write_trace(&ops);
        assert_eq!(parse_trace(&text).unwrap(), ops);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let ops = parse_trace("# header\n\nstat /a\n  \n# tail\n").unwrap();
        assert_eq!(ops, vec![MetaOp::Stat { path: "/a".into() }]);
    }

    #[test]
    fn malformed_lines_report_position() {
        assert!(parse_trace("create /a\n").unwrap_err().contains("line 1"));
        assert!(parse_trace("stat /a\nfrobnicate /b\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_trace("stat /a extra\n")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_trace("chmod /a 9z9\n")
            .unwrap_err()
            .contains("bad mode"));
    }

    #[test]
    fn spatial_scale_up_substitutes_workdir() {
        let trace = TraceReplay::from_text("create $W/f 0\nstat /shared/global\n").unwrap();
        let params = BenchParams::default();
        let ctxs = crate::params::WorkerCtx::build(&[(0, 0), (1, 0)], &params, 2);
        let mut s0 = trace.stream(&ctxs[0]);
        let mut s1 = trace.stream(&ctxs[1]);
        assert_eq!(
            s0(0).unwrap().primary_path(),
            format!("{}/f", ctxs[0].workdir),
            "worker 0 replays in its own directory"
        );
        assert_eq!(
            s1(0).unwrap().primary_path(),
            format!("{}/f", ctxs[1].workdir),
            "worker 1 in a disjoint one (TBBT spatial scale-up)"
        );
        // absolute paths without $W stay shared
        assert_eq!(s0(1).unwrap().primary_path(), "/shared/global");
        assert!(s0(2).is_none(), "trace exhausted");
    }

    #[test]
    fn repeat_replays_the_trace() {
        let trace = TraceReplay::from_text("stat /a\nstat /b\n")
            .unwrap()
            .with_repeat(3);
        let params = BenchParams::default();
        let ctx = crate::params::WorkerCtx::build(&[(0, 0)], &params, 1).remove(0);
        let mut s = trace.stream(&ctx);
        let mut n = 0;
        while s(n).is_some() {
            n += 1;
        }
        assert_eq!(n, 6);
    }

    #[test]
    fn replay_runs_on_a_real_memfs() {
        let ops = all_op_kinds();
        let trace = TraceReplay::new(ops);
        let params = BenchParams::default();
        let ctx = crate::params::WorkerCtx::build(&[(0, 0)], &params, 1).remove(0);
        let mut fs = memfs::MemFs::new();
        // make $W and the unrelated /e directory exist
        cluster::ensure_parents(&mut fs, &format!("{}/x", ctx.workdir)).unwrap();
        use memfs::Vfs;
        fs.mkdir(&format!("{}/e", ctx.workdir)).unwrap();
        let mut s = trace.stream(&ctx);
        let mut i = 0;
        while let Some(op) = s(i) {
            cluster::exec_op(&mut fs, &op).unwrap_or_else(|e| panic!("{op:?}: {e}"));
            i += 1;
        }
        assert!(fs.check().is_empty(), "{:?}", fs.check());
    }
}
