//! Scenario registry and parallel shape-regression suite.
//!
//! Every experiment binary of the `bench` crate is a thin wrapper around a
//! [`Scenario`] registered here. A scenario is a pure function producing a
//! [`ShapeReport`]: the tables the binary used to print, the key numbers
//! (saturation points, plateau ratios, COV windows, crossover locations) as
//! [`Metric`]s with explicit comparison tolerances, and the former
//! `assert!` shape checks as recorded [`ShapeCheck`]s.
//!
//! Reports are compared against checked-in JSON baselines (see
//! [`crate::baseline`]); `dmetabench suite` runs the whole registry across
//! OS threads, and `tests/suite_shapes.rs` does the same under `cargo
//! test`. Scenario bodies are single-threaded discrete-event simulations on
//! virtual time, so a report is bit-identical no matter how many sibling
//! scenarios run concurrently or in which order the worker threads pick
//! them up — a property pinned by `tests/suite_determinism.rs`.

use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use crate::scenarios::registry;

// ---------------------------------------------------------------------------
// report model
// ---------------------------------------------------------------------------

/// One measured number with its baseline-comparison policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Stable metric name (unique within a report).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Comparison tolerance against the baseline: `None` = informational
    /// (never compared, e.g. wall-clock timings), `Some(0.0)` = must be
    /// bit-identical, `Some(t)` = relative band `|a-e| <= t*max(1,|e|)`.
    pub tolerance: Option<f64>,
}

/// A recorded shape assertion (former `assert!` in the experiment binary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// Short stable name of the property.
    pub name: String,
    /// Whether the property held in this run.
    pub passed: bool,
    /// Human-readable detail (the measured numbers behind the verdict).
    pub detail: String,
}

/// A printable experiment table (also the serialized report table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpTable {
    /// Table title (names the paper artifact, e.g. "Fig. 4.4").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ExpTable {
    /// Create an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        ExpTable {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("\n=== {} ===\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The full shape record of one scenario run — everything the baseline
/// comparison sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeReport {
    /// Scenario id (equals the experiment binary name).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Paper artifact reference (e.g. "§4.3.2").
    pub paper_ref: String,
    /// Whether the scenario is a pure virtual-time simulation. Tables,
    /// notes and the summary of non-deterministic scenarios (wall-clock
    /// measurements) are exempt from baseline comparison.
    pub deterministic: bool,
    /// One-line "measured" summary for EXPERIMENTS.md.
    pub summary: String,
    /// Key numbers with comparison tolerances.
    pub metrics: Vec<Metric>,
    /// Shape assertions.
    pub checks: Vec<ShapeCheck>,
    /// The tables the binary prints.
    pub tables: Vec<ExpTable>,
    /// Free-form printed lines (ASCII charts, commentary).
    pub notes: Vec<String>,
}

impl ShapeReport {
    /// Whether every shape check passed.
    pub fn all_checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// A side file produced by a scenario (SVG chart, TSV dump). Artifacts are
/// written to `target/experiments/` and are not part of the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// File name within the experiments output directory.
    pub name: String,
    /// File content.
    pub content: String,
}

/// Report plus artifacts — what a scenario run yields.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutput {
    /// The comparable shape report.
    pub report: ShapeReport,
    /// Side files to write to `target/experiments/`.
    pub artifacts: Vec<Artifact>,
}

/// Incremental builder handed to scenario bodies.
#[derive(Debug)]
pub struct ReportBuilder {
    report: ShapeReport,
    artifacts: Vec<Artifact>,
}

impl ReportBuilder {
    /// Start a report pre-filled with the scenario's identity.
    pub fn new(scenario: &Scenario) -> Self {
        ReportBuilder {
            report: ShapeReport {
                id: scenario.id.to_owned(),
                title: scenario.title.to_owned(),
                paper_ref: scenario.paper_ref.to_owned(),
                deterministic: scenario.deterministic,
                summary: String::new(),
                metrics: Vec::new(),
                checks: Vec::new(),
                tables: Vec::new(),
                notes: Vec::new(),
            },
            artifacts: Vec::new(),
        }
    }

    /// Record an informational metric (never compared to the baseline).
    pub fn metric_info(&mut self, name: &str, value: f64) {
        self.push_metric(name, value, None);
    }

    /// Record a metric that must match the baseline bit-for-bit.
    pub fn metric_exact(&mut self, name: &str, value: f64) {
        self.push_metric(name, value, Some(0.0));
    }

    /// Record a metric compared within a relative tolerance band.
    pub fn metric_tol(&mut self, name: &str, value: f64, tolerance: f64) {
        self.push_metric(name, value, Some(tolerance));
    }

    fn push_metric(&mut self, name: &str, value: f64, tolerance: Option<f64>) {
        assert!(
            self.report.metric(name).is_none(),
            "duplicate metric name '{name}'"
        );
        self.report.metrics.push(Metric {
            name: name.to_owned(),
            value,
            tolerance,
        });
    }

    /// Record a shape check (a former `assert!`).
    pub fn check(&mut self, name: &str, passed: bool, detail: String) {
        self.report.checks.push(ShapeCheck {
            name: name.to_owned(),
            passed,
            detail,
        });
    }

    /// Attach a finished table.
    pub fn table(&mut self, table: ExpTable) {
        self.report.tables.push(table);
    }

    /// Attach a printed line (ASCII chart, commentary).
    pub fn note(&mut self, line: impl Into<String>) {
        self.report.notes.push(line.into());
    }

    /// Set the one-line "measured" summary for EXPERIMENTS.md.
    pub fn summary(&mut self, text: impl Into<String>) {
        self.report.summary = text.into();
    }

    /// Attach a side file for `target/experiments/`.
    pub fn artifact(&mut self, name: &str, content: String) {
        self.artifacts.push(Artifact {
            name: name.to_owned(),
            content,
        });
    }

    /// Finish the report.
    pub fn finish(self) -> ScenarioOutput {
        ScenarioOutput {
            report: self.report,
            artifacts: self.artifacts,
        }
    }
}

// ---------------------------------------------------------------------------
// scenarios
// ---------------------------------------------------------------------------

/// A registered experiment scenario.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable id — equals the experiment binary name (`exp_fig_4_4`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// EXPERIMENTS.md section this scenario belongs to.
    pub group: &'static str,
    /// Paper artifact reference (e.g. "§4.3.2").
    pub paper_ref: &'static str,
    /// What the paper reports (the "Paper" column of EXPERIMENTS.md).
    pub paper: &'static str,
    /// Verdict cell for EXPERIMENTS.md when all checks pass.
    pub verdict: &'static str,
    /// Pure virtual-time simulation (bit-reproducible) vs. wall-clock.
    pub deterministic: bool,
    /// Rough relative runtime — the suite claims expensive scenarios first
    /// so the parallel tail stays short. Never affects results.
    pub cost_hint: u32,
    /// The scenario body.
    pub run: fn(&mut ReportBuilder),
}

/// Look up a scenario by id.
pub fn find(id: &str) -> Option<&'static Scenario> {
    registry().iter().find(|s| s.id == id)
}

// ---------------------------------------------------------------------------
// running
// ---------------------------------------------------------------------------

/// Outcome of one scenario execution.
#[derive(Debug)]
pub struct ScenarioRunResult {
    /// The scenario that ran.
    pub scenario: &'static Scenario,
    /// The output, or the panic message if the body panicked.
    pub outcome: Result<ScenarioOutput, String>,
    /// Wall-clock seconds this scenario took.
    pub wall_secs: f64,
    /// Telemetry captured during the run (traced runs only).
    pub telemetry: Option<simcore::TelemetryReport>,
}

/// Run one scenario, catching panics.
pub fn run_scenario(scenario: &'static Scenario) -> ScenarioRunResult {
    run_scenario_inner(scenario, false)
}

/// Run one scenario with the [`simcore::telemetry`] sink enabled; the
/// captured spans/counters/histograms come back in
/// [`ScenarioRunResult::telemetry`]. Telemetry is stamped with virtual
/// time only, so the report is bit-identical across repeat runs and
/// unaffected by sibling scenarios on other threads.
pub fn run_scenario_traced(scenario: &'static Scenario) -> ScenarioRunResult {
    run_scenario_inner(scenario, true)
}

fn run_scenario_inner(scenario: &'static Scenario, traced: bool) -> ScenarioRunResult {
    let t0 = Instant::now();
    let body = || {
        // catch_unwind sits *inside* the telemetry capture so a panicking
        // scenario still yields whatever events it recorded before dying.
        catch_unwind(AssertUnwindSafe(|| {
            let mut b = ReportBuilder::new(scenario);
            (scenario.run)(&mut b);
            b.finish()
        }))
        .map_err(|e| {
            if let Some(s) = e.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = e.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(p) = e.downcast_ref::<cluster::PartitionUnsupported>() {
                // structured engine error: the failure line already names
                // the scenario; the message adds model, feature and remedy
                format!("scenario '{}': {p}", scenario.id)
            } else {
                "scenario panicked".to_owned()
            }
        })
    };
    let (outcome, telemetry) = if traced {
        let (outcome, report) = simcore::telemetry::capture(body);
        (outcome, Some(report))
    } else {
        (body(), None)
    };
    ScenarioRunResult {
        scenario,
        outcome,
        wall_secs: t0.elapsed().as_secs_f64(),
        telemetry,
    }
}

/// A completed suite run.
#[derive(Debug)]
pub struct SuiteRun {
    /// Per-scenario results, in registry order regardless of scheduling.
    pub results: Vec<ScenarioRunResult>,
    /// Wall-clock seconds for the whole (parallel) run.
    pub wall_secs: f64,
}

impl SuiteRun {
    /// Sum of the individual scenario wall-clock times — the serial cost
    /// the parallel run avoided.
    pub fn serial_secs(&self) -> f64 {
        self.results.iter().map(|r| r.wall_secs).sum()
    }
}

/// Run scenarios concurrently on `jobs` OS threads.
///
/// Results come back in input order; the claim order of the shared work
/// queue does not affect any report (scenario bodies are independent
/// single-threaded simulations).
pub fn run_suite(scenarios: &[&'static Scenario], jobs: usize) -> SuiteRun {
    run_suite_inner(scenarios, jobs, &default_order(scenarios), false)
}

/// [`run_suite`] with the telemetry sink enabled per scenario; each
/// [`ScenarioRunResult`] carries its captured trace. Telemetry is scoped
/// per worker thread, so traces are bit-identical for any `jobs` level or
/// claim order.
pub fn run_suite_traced(scenarios: &[&'static Scenario], jobs: usize) -> SuiteRun {
    run_suite_inner(scenarios, jobs, &default_order(scenarios), true)
}

/// [`run_suite`] with an explicit work-claim order (a permutation of
/// `0..scenarios.len()`). Exposed so tests can shuffle scheduling and
/// assert reports are order-independent.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the scenario indices.
pub fn run_suite_ordered(
    scenarios: &[&'static Scenario],
    jobs: usize,
    order: &[usize],
) -> SuiteRun {
    run_suite_inner(scenarios, jobs, order, false)
}

/// [`run_suite_ordered`] with telemetry capture, for the determinism tests.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the scenario indices.
pub fn run_suite_ordered_traced(
    scenarios: &[&'static Scenario],
    jobs: usize,
    order: &[usize],
) -> SuiteRun {
    run_suite_inner(scenarios, jobs, order, true)
}

/// Claim expensive scenarios first: with a shared work queue this keeps
/// the long poles off the tail of the schedule. Purely a latency
/// optimization — reports are identical for any claim order.
fn default_order(scenarios: &[&'static Scenario]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scenarios.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(scenarios[i].cost_hint));
    order
}

fn run_suite_inner(
    scenarios: &[&'static Scenario],
    jobs: usize,
    order: &[usize],
    traced: bool,
) -> SuiteRun {
    let mut seen = vec![false; scenarios.len()];
    for &i in order {
        assert!(
            i < scenarios.len() && !seen[i],
            "order must be a permutation"
        );
        seen[i] = true;
    }
    assert!(seen.iter().all(|&b| b), "order must cover every scenario");

    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ScenarioRunResult>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.clamp(1, scenarios.len().max(1)) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::SeqCst);
                if k >= order.len() {
                    break;
                }
                let idx = order[k];
                let result = run_scenario_inner(scenarios[idx], traced);
                *slots[idx].lock().expect("slot lock") = Some(result);
            });
        }
    });
    SuiteRun {
        results: slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("every slot filled")
            })
            .collect(),
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Default worker-thread count for suite runs.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Entry point for the thin experiment binaries: run one scenario, print
/// its tables/notes/checks, write its artifacts, and exit non-zero if a
/// shape check failed (preserving the old `assert!` behaviour).
pub fn run_scenario_main(id: &str) {
    let scenario = find(id).unwrap_or_else(|| panic!("unknown scenario '{id}'"));
    let result = run_scenario(scenario);
    let output = match result.outcome {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("scenario {id} panicked: {msg}");
            std::process::exit(101);
        }
    };
    for table in &output.report.tables {
        table.print();
    }
    for note in &output.report.notes {
        println!("{note}");
    }
    for artifact in &output.artifacts {
        save_artifact(&artifact.name, &artifact.content);
    }
    let mut failed = 0usize;
    for check in &output.report.checks {
        if check.passed {
            println!("check ok   {} — {}", check.name, check.detail);
        } else {
            println!("check FAIL {} — {}", check.name, check.detail);
            failed += 1;
        }
    }
    if failed > 0 {
        println!(
            "\nSHAPE FAIL: {failed} of {} checks failed ({}).",
            output.report.checks.len(),
            scenario.paper_ref
        );
        std::process::exit(1);
    }
    println!(
        "\nSHAPE OK: {} checks hold ({} {}).",
        output.report.checks.len(),
        scenario.paper_ref,
        scenario.title
    );
}

// ---------------------------------------------------------------------------
// shared sweep helpers (moved here from the bench crate so scenario bodies
// and the Criterion benches use one implementation)
// ---------------------------------------------------------------------------

use cluster::{run_sim, OpStream, SimConfig, SimRunResult, WorkerSpec};
use dfs::{DistFs, MetaOp};

/// Uniform node names for simulated runs.
pub fn node_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("lxnode{i:02}")).collect()
}

/// `nodes × ppn` normal-priority workers.
pub fn make_workers(nodes: usize, ppn: usize) -> Vec<WorkerSpec> {
    let mut out = Vec::with_capacity(nodes * ppn);
    for n in 0..nodes {
        for p in 0..ppn {
            out.push(WorkerSpec::new(n, p));
        }
    }
    out
}

/// Per-worker create streams under distinct directories (MakeFiles-shaped;
/// unbounded — pair with a duration in [`SimConfig`]).
pub fn create_streams(workers: &[WorkerSpec], data_bytes: u64) -> Vec<Box<dyn OpStream>> {
    workers
        .iter()
        .map(|w| {
            let dir = format!("/bench/n{}p{}", w.node, w.proc);
            let b: Box<dyn OpStream> = Box::new(move |i: u64| {
                Some(MetaOp::Create {
                    path: format!("{dir}/sub{}/f{i}", i / 5000),
                    data_bytes,
                })
            });
            b
        })
        .collect()
}

/// Run a duration-bounded MakeFiles-style workload and return the result.
pub fn run_makefiles(
    model: &mut dyn DistFs,
    nodes: usize,
    ppn: usize,
    config: &SimConfig,
) -> SimRunResult {
    let workers = make_workers(nodes, ppn);
    let streams = create_streams(&workers, 0);
    run_sim(model, &node_names(nodes), workers, streams, config)
}

/// Stonewall throughput of a MakeFiles run at `nodes × ppn` — the standard
/// scaling probe used by several experiments.
pub fn makefiles_throughput(
    mut model: Box<dyn DistFs>,
    nodes: usize,
    ppn: usize,
    config: &SimConfig,
) -> f64 {
    let res = run_makefiles(model.as_mut(), nodes, ppn, config);
    res.stonewall_ops_per_sec()
}

/// Output directory for experiment artifacts (`target/experiments`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Write an artifact (chart, TSV) into the experiment output directory and
/// note it on stdout.
pub fn save_artifact(name: &str, content: &str) {
    let path = out_dir().join(name);
    std::fs::write(&path, content).expect("can write experiment artifact");
    println!("[artifact] {}", path.display());
}

/// Format ops/s for table cells.
pub fn fmt_ops(v: f64) -> String {
    format!("{v:.0}")
}

/// Format a ratio/factor for table cells.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

// ---------------------------------------------------------------------------
// EXPERIMENTS.md generation
// ---------------------------------------------------------------------------

/// Regenerate EXPERIMENTS.md from suite results (in registry order).
pub fn emit_markdown(run: &SuiteRun) -> String {
    let mut out = String::new();
    out.push_str(
        "# EXPERIMENTS — paper vs. measured\n\
         \n\
         Every table and figure of the thesis' evaluation, the scenario that\n\
         regenerates it, what the paper reports, and what this reproduction\n\
         measures. Absolute numbers come from behavioural models on virtual time\n\
         (see DESIGN.md §2), so the comparison target is the **shape**: who wins,\n\
         by roughly what factor, where the saturations and crossovers fall.\n\
         \n\
         This file is generated: `cargo run --release -p dmetabench --bin\n\
         dmetabench -- suite --emit-md EXPERIMENTS.md`. Each scenario records its\n\
         shape checks and key metrics in a [`ShapeReport`]; reports are compared\n\
         against the checked-in baselines in `baselines/*.json` on every `cargo\n\
         test` run (see `tests/suite_shapes.rs`) and by `dmetabench suite`.\n\
         Per-scenario binaries still exist (`cargo run --release -p bench --bin\n\
         exp_fig_4_4`) and exit non-zero if their shape checks fail.\n\
         \n\
         Charts are written to `target/experiments/*.svg`. Passing\n\
         `--trace-out <dir>` to `dmetabench suite` additionally writes a\n\
         Chrome/Perfetto trace and a metrics summary per scenario, and\n\
         `dmetabench analyze <id>` breaks each operation's end-to-end\n\
         latency into causal segments (network, queueing, service, lock\n\
         wait) from the same traces (see the README's Observability\n\
         section).\n",
    );
    let mut current_group = "";
    for result in &run.results {
        let s = result.scenario;
        if s.group != current_group {
            current_group = s.group;
            out.push_str(&format!(
                "\n## {}\n\n| Exp | Scenario | Paper | Measured | Verdict |\n|---|---|---|---|---|\n",
                s.group
            ));
        }
        let (measured, verdict) = match &result.outcome {
            Ok(o) if o.report.all_checks_passed() => {
                (o.report.summary.clone(), s.verdict.to_owned())
            }
            Ok(o) => (
                o.report.summary.clone(),
                format!(
                    "**FAILING** ({} checks)",
                    o.report.checks.iter().filter(|c| !c.passed).count()
                ),
            ),
            Err(msg) => (format!("panicked: {msg}"), "**PANICKED**".to_owned()),
        };
        out.push_str(&format!(
            "| {} | `{}` | {} | {} | {} |\n",
            s.title, s.id, s.paper, measured, verdict
        ));
    }
    out.push_str(
        "\n## Notes on calibration\n\
         \n\
         Model constants (service times, parallelism, link latencies) are in\n\
         `dfs/src/*.rs` `*Config::default()` and were calibrated once against the two\n\
         absolute anchors visible in the supplied text: Fig. 4.4 (≈5 500–6 000 ops/s\n\
         from 4 NFS clients) and Fig. 4.6 (filer saturation below 20 000 ops/s with a\n\
         ~10 s consistency-point sawtooth). Everything else follows from the\n\
         architecture models, not from per-experiment tuning; the same default\n\
         configurations are used across all experiments (the write-back study and the\n\
         latency sweep vary exactly the parameter they study).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut t = ExpTable::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("a  bbbb"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut t = ExpTable::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let reg = registry();
        assert_eq!(reg.len(), 29, "all 29 experiments are registered");
        for (i, a) in reg.iter().enumerate() {
            for b in &reg[i + 1..] {
                assert_ne!(a.id, b.id, "duplicate scenario id");
            }
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut t = ExpTable::new("demo", &["a"]);
        t.row(vec!["1".into()]);
        let report = ShapeReport {
            id: "x".into(),
            title: "X".into(),
            paper_ref: "§0".into(),
            deterministic: true,
            summary: "s".into(),
            metrics: vec![
                Metric {
                    name: "m".into(),
                    value: 0.1 + 0.2,
                    tolerance: Some(0.0),
                },
                Metric {
                    name: "i".into(),
                    value: 3.5,
                    tolerance: None,
                },
            ],
            checks: vec![ShapeCheck {
                name: "c".into(),
                passed: true,
                detail: "d".into(),
            }],
            tables: vec![t],
            notes: vec!["n".into()],
        };
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        let back: ShapeReport = serde_json::from_str(&json).expect("decodes");
        assert_eq!(report, back);
        assert_eq!(
            report.metric("m").expect("present").value.to_bits(),
            back.metric("m").expect("present").value.to_bits()
        );
    }
}
