//! Result preprocessing (paper §3.3.9, listings 3.4 and 3.5).
//!
//! From the raw per-process time-interval logs this module computes, per
//! grid interval: the total operations completed, the total throughput, the
//! sample standard deviation of per-process interval progress, and the
//! coefficient of variation (COV) — plus the summary averages: wall-clock,
//! stonewall, and fixed-operation-count ("strong scaling") averages.
//!
//! The arithmetic is validated against the worked example of listings
//! 3.3–3.5 (stonewall 22 191 ops/s, 10 000-op average 20 738 ops/s).

use crate::result::ResultSet;
use serde::{Deserialize, Serialize};

/// One row of the interval summary (listing 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalRow {
    /// Grid timestamp in seconds.
    pub timestamp: f64,
    /// Total operations completed by all processes up to this instant.
    pub total_done: u64,
    /// Throughput during this interval in ops/s (0 for the first row, which
    /// has no predecessor — matching the paper's output).
    pub throughput: f64,
    /// Sample standard deviation of per-process operations completed within
    /// this interval.
    pub stddev: f64,
    /// Coefficient of variation: `stddev / mean` of per-process interval
    /// progress (0 when the mean is 0).
    pub cov: f64,
}

/// Preprocessed results (listing 3.5 plus the full interval table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preprocessed {
    /// Operation name.
    pub operation: String,
    /// Nodes used.
    pub nodes: usize,
    /// Processes per node.
    pub ppn: usize,
    /// Total processes.
    pub total_processes: usize,
    /// Per-interval rows on the common grid.
    pub intervals: Vec<IntervalRow>,
    /// Wall-clock average ops/s (total ops / last completion time).
    pub wallclock_avg: f64,
    /// Stonewall average ops/s: ops completed up to the first process
    /// completion, divided by that time (§3.2.5).
    pub stonewall_avg: f64,
    /// `(N, avg)` pairs: average ops/s up to the first interval where at
    /// least `N` total operations had completed; 0 if `N` was never reached
    /// (the strong-scaling averages of §3.3.9).
    pub fixed_n_avgs: Vec<(u64, f64)>,
}

/// Cumulative per-process operation counts aligned to the common grid.
///
/// Returns `(grid_timestamps, per_process_counts)` where
/// `per_process_counts[p][k]` is process `p`'s counter at grid instant `k`.
/// Counts carry forward between samples and stay at the final value after a
/// process finishes.
pub fn align_to_grid(rs: &ResultSet) -> (Vec<f64>, Vec<Vec<u64>>) {
    let dt = rs.interval_s;
    let t_end = rs
        .processes
        .iter()
        .flat_map(|p| p.samples.last().map(|&(t, _)| t))
        .fold(0.0f64, f64::max);
    // floor with a tolerance: a completion at 0.85 s must not conjure a
    // 0.9 s grid point, but a completion exactly on the grid keeps it
    let steps = ((t_end + dt * 1e-6) / dt).floor() as usize;
    let grid: Vec<f64> = (1..=steps).map(|k| k as f64 * dt).collect();
    let mut counts = Vec::with_capacity(rs.processes.len());
    for p in &rs.processes {
        let mut row = Vec::with_capacity(grid.len());
        let mut idx = 0;
        let mut last = 0u64;
        for &t in &grid {
            while idx < p.samples.len() && p.samples[idx].0 <= t + dt * 1e-6 {
                last = p.samples[idx].1;
                idx += 1;
            }
            row.push(last);
        }
        counts.push(row);
    }
    (grid, counts)
}

/// Run the full preprocessing step.
pub fn preprocess(rs: &ResultSet, fixed_ns: &[u64]) -> Preprocessed {
    let (grid, counts) = align_to_grid(rs);
    let nproc = counts.len();
    let mut intervals = Vec::with_capacity(grid.len());
    let mut prev_totals: Vec<u64> = vec![0; nproc];
    let mut prev_total = 0u64;
    for (k, &t) in grid.iter().enumerate() {
        let cur: Vec<u64> = counts.iter().map(|c| c[k]).collect();
        let total: u64 = cur.iter().sum();
        if k == 0 {
            intervals.push(IntervalRow {
                timestamp: t,
                total_done: total,
                throughput: 0.0,
                stddev: 0.0,
                cov: 0.0,
            });
        } else {
            let deltas: Vec<f64> = cur
                .iter()
                .zip(&prev_totals)
                .map(|(&c, &p)| (c - p) as f64)
                .collect();
            let mean = deltas.iter().sum::<f64>() / nproc as f64;
            let stddev = if nproc > 1 {
                (deltas.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (nproc - 1) as f64).sqrt()
            } else {
                0.0
            };
            let cov = if mean > 0.0 { stddev / mean } else { 0.0 };
            intervals.push(IntervalRow {
                timestamp: t,
                total_done: total,
                throughput: (total - prev_total) as f64 / rs.interval_s,
                stddev,
                cov,
            });
        }
        prev_totals = cur;
        prev_total = total;
    }

    let total_ops: u64 = rs.total_ops();
    let t_last = rs
        .processes
        .iter()
        .flat_map(|p| p.finished_at)
        .fold(0.0f64, f64::max);
    let wallclock_avg = if t_last > 0.0 {
        total_ops as f64 / t_last
    } else {
        0.0
    };

    // stonewall: the instant the first process finished
    let first_finish = rs
        .processes
        .iter()
        .flat_map(|p| p.finished_at)
        .fold(f64::INFINITY, f64::min);
    let stonewall_avg = if first_finish.is_finite() && first_finish > 0.0 {
        // Use the raw samples rather than the grid so runs shorter than one
        // sampling interval still stonewall correctly.
        let eps = rs.interval_s * 1e-6;
        let done_at: u64 = rs
            .processes
            .iter()
            .map(|p| {
                p.samples
                    .iter()
                    .take_while(|&&(t, _)| t <= first_finish + eps)
                    .map(|&(_, n)| n)
                    .last()
                    .unwrap_or(0)
            })
            .sum();
        done_at as f64 / first_finish
    } else {
        wallclock_avg
    };

    let fixed_n_avgs = fixed_ns
        .iter()
        .map(|&n| {
            let hit = intervals
                .iter()
                .find(|row| row.total_done >= n)
                .map(|row| row.total_done as f64 / row.timestamp)
                .unwrap_or(0.0);
            (n, hit)
        })
        .collect();

    Preprocessed {
        operation: rs.operation.clone(),
        nodes: rs.nodes,
        ppn: rs.ppn,
        total_processes: rs.total_processes(),
        intervals,
        wallclock_avg,
        stonewall_avg,
        fixed_n_avgs,
    }
}

impl Preprocessed {
    /// The interval-summary TSV of listing 3.4: operation, nodes,
    /// processes, timestamp, total, throughput, stddev, COV.
    pub fn interval_tsv(&self) -> String {
        let mut out = String::new();
        for row in &self.intervals {
            out.push_str(&format!(
                "{}\t{}\t{}\t{:.1}\t{}\t{:.0}\t{:.1}\t{:.3}\n",
                self.operation,
                self.nodes,
                self.total_processes,
                row.timestamp,
                row.total_done,
                row.throughput,
                row.stddev,
                row.cov
            ));
        }
        out
    }

    /// The one-line summary of listing 3.5: operation, nodes, ppn, total
    /// processes, stonewall average, fixed-N averages.
    pub fn summary_tsv(&self) -> String {
        let mut out = format!(
            "{}\t{}\t{}\t{}\t{:.0}",
            self.operation, self.nodes, self.ppn, self.total_processes, self.stonewall_avg
        );
        for &(_, avg) in &self.fixed_n_avgs {
            out.push_str(&format!("\t{:.0}", avg));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::ProcessTrace;

    /// Reconstruction of the paper's listing 3.3 example: four processes,
    /// 5 000 StatNocacheFiles operations each, on two nodes. Interval totals
    /// match listing 3.4 exactly; the per-process values at 0.4–0.7 s are
    /// interpolations consistent with those totals.
    fn listing_3_3() -> ResultSet {
        let p = |host: &str, no: usize, samples: Vec<(f64, u64)>| {
            let finished_at = samples.last().map(|&(t, _)| t);
            let ops_done = samples.last().map(|&(_, n)| n).unwrap_or(0);
            ProcessTrace {
                hostname: host.into(),
                process_no: no,
                samples,
                finished_at,
                ops_done,
                errors: 0,
            }
        };
        ResultSet {
            operation: "StatNocacheFiles".into(),
            fs_name: "nfs-wafl".into(),
            nodes: 2,
            ppn: 2,
            interval_s: 0.1,
            processes: vec![
                p(
                    "lx64a153",
                    0,
                    vec![
                        (0.1, 1),
                        (0.2, 569),
                        (0.3, 1212),
                        (0.4, 1830),
                        (0.5, 2470),
                        (0.6, 3115),
                        (0.7, 3755),
                        (0.8, 4411),
                        (0.9, 5000),
                    ],
                ),
                p(
                    "lx64a153",
                    1,
                    vec![
                        (0.1, 1),
                        (0.2, 550),
                        (0.3, 1163),
                        (0.4, 1790),
                        (0.5, 2450),
                        (0.6, 3100),
                        (0.7, 3740),
                        (0.8, 4331),
                        (0.9, 4977),
                        (1.0, 5000),
                    ],
                ),
                p(
                    "lx64a140",
                    2,
                    vec![
                        (0.1, 1),
                        (0.2, 547),
                        (0.3, 1166),
                        (0.4, 1800),
                        (0.5, 2460),
                        (0.6, 3110),
                        (0.7, 3750),
                        (0.8, 4351),
                        (0.9, 4995),
                        (1.0, 5000),
                    ],
                ),
                p(
                    "lx64a140",
                    3,
                    vec![
                        (0.1, 24),
                        (0.2, 624),
                        (0.3, 1266),
                        (0.4, 1896),
                        (0.5, 2486),
                        (0.6, 3118),
                        (0.7, 3749),
                        (0.8, 4475),
                        (0.9, 5000),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn empty_sample_traces_do_not_panic() {
        // A worker killed at the stonewall before its first sample tick
        // produces an empty trace; preprocessing must cope.
        let rs = ResultSet {
            operation: "MakeFiles".into(),
            fs_name: "nfs-wafl".into(),
            nodes: 1,
            ppn: 2,
            interval_s: 0.1,
            processes: vec![
                ProcessTrace {
                    hostname: "lx64a153".into(),
                    process_no: 0,
                    samples: vec![(0.1, 10), (0.2, 20)],
                    finished_at: Some(0.2),
                    ops_done: 20,
                    errors: 0,
                },
                ProcessTrace {
                    hostname: "lx64a153".into(),
                    process_no: 1,
                    samples: Vec::new(),
                    finished_at: None,
                    ops_done: 0,
                    errors: 0,
                },
            ],
        };
        let pre = preprocess(&rs, &[10]);
        assert_eq!(pre.total_processes, 2);
        assert!(pre.stonewall_avg.is_finite());

        let all_empty = ResultSet {
            processes: vec![ProcessTrace {
                hostname: "lx64a153".into(),
                process_no: 0,
                samples: Vec::new(),
                finished_at: None,
                ops_done: 0,
                errors: 0,
            }],
            ..rs
        };
        let pre = preprocess(&all_empty, &[10]);
        assert!(pre.intervals.is_empty());
    }

    #[test]
    fn interval_totals_match_listing_3_4() {
        let pre = preprocess(&listing_3_3(), &[]);
        let totals: Vec<u64> = pre.intervals.iter().map(|r| r.total_done).collect();
        assert_eq!(
            totals,
            vec![27, 2290, 4807, 7316, 9866, 12443, 14994, 17568, 19972, 20000]
        );
    }

    #[test]
    fn throughput_matches_listing_3_4() {
        let pre = preprocess(&listing_3_3(), &[]);
        let tp: Vec<f64> = pre.intervals.iter().map(|r| r.throughput).collect();
        assert_eq!(tp[0], 0.0, "first row has no predecessor");
        assert!((tp[1] - 22630.0).abs() < 1.0, "{}", tp[1]);
        assert!((tp[2] - 25170.0).abs() < 1.0);
        assert!((tp[9] - 280.0).abs() < 1.0);
    }

    #[test]
    fn stddev_and_cov_match_listing_3_4() {
        let pre = preprocess(&listing_3_3(), &[]);
        // row 0.2: stddev 24.8, cov 0.044
        let r = pre.intervals[1];
        assert!((r.stddev - 24.8).abs() < 0.1, "stddev {}", r.stddev);
        assert!((r.cov - 0.044).abs() < 0.001, "cov {}", r.cov);
        // row 0.3: stddev 15.5, cov 0.025
        let r = pre.intervals[2];
        assert!((r.stddev - 15.5).abs() < 0.1);
        assert!((r.cov - 0.025).abs() < 0.001);
        // row 0.9: stddev 57.1, cov 0.095
        let r = pre.intervals[8];
        assert!((r.stddev - 57.1).abs() < 0.1, "stddev {}", r.stddev);
        assert!((r.cov - 0.095).abs() < 0.001);
        // row 1.0: stddev 10.9, cov 1.561
        let r = pre.intervals[9];
        assert!((r.stddev - 10.9).abs() < 0.1, "stddev {}", r.stddev);
        assert!((r.cov - 1.561).abs() < 0.01, "cov {}", r.cov);
    }

    #[test]
    fn stonewall_matches_listing_3_5() {
        let pre = preprocess(&listing_3_3(), &[10_000, 25_000]);
        // 19 972 ops when the first two processes complete at 0.9 s
        assert!(
            (pre.stonewall_avg - 22_191.0).abs() < 1.0,
            "stonewall {}",
            pre.stonewall_avg
        );
        assert_eq!(pre.fixed_n_avgs[0].0, 10_000);
        assert!(
            (pre.fixed_n_avgs[0].1 - 20_738.0).abs() < 1.0,
            "10k avg {}",
            pre.fixed_n_avgs[0].1
        );
        assert_eq!(pre.fixed_n_avgs[1].1, 0.0, "25 000 ops were never reached");
    }

    #[test]
    fn summary_tsv_format() {
        let pre = preprocess(&listing_3_3(), &[10_000, 25_000]);
        assert_eq!(
            pre.summary_tsv(),
            "StatNocacheFiles\t2\t2\t4\t22191\t20738\t0\n"
        );
    }

    #[test]
    fn wallclock_average() {
        let pre = preprocess(&listing_3_3(), &[]);
        assert!((pre.wallclock_avg - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn equal_speed_processes_have_zero_cov() {
        let p = |no: usize| ProcessTrace {
            hostname: "h".into(),
            process_no: no,
            samples: (1..=10).map(|k| (k as f64 * 0.1, k as u64 * 100)).collect(),
            finished_at: Some(1.0),
            ops_done: 1000,
            errors: 0,
        };
        let rs = ResultSet {
            operation: "X".into(),
            fs_name: "f".into(),
            nodes: 1,
            ppn: 4,
            interval_s: 0.1,
            processes: (0..4).map(p).collect(),
        };
        let pre = preprocess(&rs, &[]);
        for row in &pre.intervals[1..] {
            assert_eq!(row.cov, 0.0);
            assert_eq!(row.stddev, 0.0);
        }
    }

    #[test]
    fn single_process_has_no_deviation() {
        let rs = ResultSet {
            operation: "X".into(),
            fs_name: "f".into(),
            nodes: 1,
            ppn: 1,
            interval_s: 0.1,
            processes: vec![ProcessTrace {
                hostname: "h".into(),
                process_no: 0,
                samples: vec![(0.1, 50), (0.2, 130)],
                finished_at: Some(0.2),
                ops_done: 130,
                errors: 0,
            }],
        };
        let pre = preprocess(&rs, &[100]);
        assert_eq!(pre.intervals[1].stddev, 0.0);
        assert!((pre.intervals[1].throughput - 800.0).abs() < 1e-9);
        assert!((pre.fixed_n_avgs[0].1 - 650.0).abs() < 1e-9);
    }
}
