//! Result sets: the raw per-process time-interval logs of a benchmark run
//! and their TSV serialization (paper listing 3.3).

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use cluster::SimRunResult;

/// The progress log of one worker process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessTrace {
    /// Hostname of the node the process ran on.
    pub hostname: String,
    /// Global process number within the run.
    pub process_no: usize,
    /// `(timestamp seconds, operations completed)` samples.
    pub samples: Vec<(f64, u64)>,
    /// Seconds at which the process completed its work (`None` only for
    /// aborted runs).
    pub finished_at: Option<f64>,
    /// Total operations completed.
    pub ops_done: u64,
    /// Failed operations.
    pub errors: u64,
}

/// The complete raw result of one benchmark iteration: one operation at one
/// `(nodes, processes-per-node)` combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Operation name (e.g. `MakeFiles`).
    pub operation: String,
    /// File-system / backend label.
    pub fs_name: String,
    /// Number of nodes used.
    pub nodes: usize,
    /// Processes per node.
    pub ppn: usize,
    /// Sampling interval in seconds.
    pub interval_s: f64,
    /// Per-process traces, in process order.
    pub processes: Vec<ProcessTrace>,
}

impl ResultSet {
    /// Build a result set from an engine run.
    pub fn from_run(operation: &str, nodes: usize, ppn: usize, run: &SimRunResult) -> ResultSet {
        ResultSet {
            operation: operation.to_owned(),
            fs_name: run.fs_name.clone(),
            nodes,
            ppn,
            interval_s: run.interval.as_secs_f64(),
            processes: run
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| ProcessTrace {
                    hostname: w.node_name.clone(),
                    process_no: i,
                    samples: w
                        .samples
                        .iter()
                        .map(|&(t, n)| (t.as_secs_f64(), n))
                        .collect(),
                    finished_at: w.finished_at.map(|t| t.as_secs_f64()),
                    ops_done: w.ops_done,
                    errors: w.errors,
                })
                .collect(),
        }
    }

    /// Total processes.
    pub fn total_processes(&self) -> usize {
        self.processes.len()
    }

    /// Total operations completed by all processes.
    pub fn total_ops(&self) -> u64 {
        self.processes.iter().map(|p| p.ops_done).sum()
    }

    /// The conventional result filename of §3.3.9, e.g.
    /// `results-StatNocacheFiles-2-4.tsv`.
    pub fn file_name(&self) -> String {
        format!(
            "results-{}-{}-{}.tsv",
            self.operation,
            self.nodes,
            self.total_processes()
        )
    }

    /// Serialize as the TSV of listing 3.3:
    /// `Hostname Operation ProcessNo Timestamp OperationsDone`.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("Hostname\tOperation\tProcessNo\tTimestamp\tOperationsDone\n");
        // Self-describing metadata header (a comment row, ignored by naive
        // TSV consumers but authoritative for `from_tsv`).
        out.push_str(&format!(
            "# fs={} nodes={} ppn={} interval_s={}\n",
            self.fs_name, self.nodes, self.ppn, self.interval_s
        ));
        for p in &self.processes {
            for &(t, n) in &p.samples {
                // Microsecond precision: the grid stays readable and the
                // off-grid completion timestamps survive a round trip.
                out.push_str(&format!(
                    "{}\t{}\t{}\t{:.6}\t{}\n",
                    p.hostname, self.operation, p.process_no, t, n
                ));
            }
        }
        out
    }

    /// Parse the TSV format written by [`to_tsv`](ResultSet::to_tsv).
    ///
    /// Metadata not present in the rows (`fs_name`, `nodes`, `ppn`,
    /// interval) must be supplied by the caller; the interval is inferred
    /// from the smallest timestamp step when possible.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed row.
    pub fn from_tsv(
        text: &str,
        fs_name: &str,
        nodes: usize,
        ppn: usize,
    ) -> Result<ResultSet, String> {
        let mut operation = String::new();
        let mut procs: Vec<ProcessTrace> = Vec::new();
        let mut header_interval: Option<f64> = None;
        for (lineno, line) in text.lines().enumerate() {
            if lineno == 0 && line.starts_with("Hostname") {
                continue;
            }
            if let Some(meta) = line.strip_prefix("# ") {
                for kv in meta.split_whitespace() {
                    if let Some(v) = kv.strip_prefix("interval_s=") {
                        header_interval = v.parse().ok();
                    }
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split('\t').collect();
            if cols.len() != 5 {
                return Err(format!("line {}: expected 5 columns", lineno + 1));
            }
            let host = cols[0];
            operation = cols[1].to_owned();
            let pno: usize = cols[2]
                .parse()
                .map_err(|e| format!("line {}: bad process number: {e}", lineno + 1))?;
            let ts: f64 = cols[3]
                .parse()
                .map_err(|e| format!("line {}: bad timestamp: {e}", lineno + 1))?;
            let ops: u64 = cols[4]
                .parse()
                .map_err(|e| format!("line {}: bad op count: {e}", lineno + 1))?;
            while procs.len() <= pno {
                procs.push(ProcessTrace {
                    hostname: host.to_owned(),
                    process_no: procs.len(),
                    samples: Vec::new(),
                    finished_at: None,
                    ops_done: 0,
                    errors: 0,
                });
            }
            let p = &mut procs[pno];
            p.hostname = host.to_owned();
            p.samples.push((ts, ops));
            p.ops_done = p.ops_done.max(ops);
        }
        // Infer the sampling interval as the most frequent timestamp step —
        // completion samples land off-grid and must not shrink the grid.
        let mut step_counts: std::collections::BTreeMap<u64, usize> =
            std::collections::BTreeMap::new();
        for p in &mut procs {
            p.samples
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("timestamps are finite"));
            if let Some(&(t, _)) = p.samples.last() {
                p.finished_at = Some(t);
            }
            for w in p.samples.windows(2) {
                let dt = w[1].0 - w[0].0;
                if dt > 1e-9 {
                    *step_counts.entry((dt * 1e6).round() as u64).or_insert(0) += 1;
                }
            }
        }
        let interval_s = header_interval.unwrap_or_else(|| {
            step_counts
                .iter()
                .max_by_key(|&(_, &count)| count)
                .map(|(&us, _)| us as f64 / 1e6)
                .unwrap_or(0.1)
        });
        Ok(ResultSet {
            operation,
            fs_name: fs_name.to_owned(),
            nodes,
            ppn,
            interval_s,
            processes: procs,
        })
    }

    /// Sampling interval as a [`SimDuration`].
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.interval_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ResultSet {
        ResultSet {
            operation: "StatNocacheFiles".into(),
            fs_name: "nfs-wafl".into(),
            nodes: 2,
            ppn: 2,
            interval_s: 0.1,
            processes: vec![
                ProcessTrace {
                    hostname: "lx64a153".into(),
                    process_no: 0,
                    samples: vec![(0.1, 1), (0.2, 569), (0.3, 1212)],
                    finished_at: Some(0.3),
                    ops_done: 1212,
                    errors: 0,
                },
                ProcessTrace {
                    hostname: "lx64a140".into(),
                    process_no: 1,
                    samples: vec![(0.1, 24), (0.2, 624)],
                    finished_at: Some(0.2),
                    ops_done: 624,
                    errors: 0,
                },
            ],
        }
    }

    #[test]
    fn tsv_roundtrip() {
        let rs = sample_set();
        let tsv = rs.to_tsv();
        assert!(tsv.starts_with("Hostname\tOperation"));
        assert!(tsv.contains("lx64a153\tStatNocacheFiles\t0\t0.200000\t569"));
        let parsed = ResultSet::from_tsv(&tsv, "nfs-wafl", 2, 2).unwrap();
        assert_eq!(parsed.operation, "StatNocacheFiles");
        assert_eq!(parsed.processes.len(), 2);
        assert_eq!(parsed.processes[0].samples, rs.processes[0].samples);
        assert!((parsed.interval_s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn file_name_follows_convention() {
        let rs = sample_set();
        assert_eq!(rs.file_name(), "results-StatNocacheFiles-2-2.tsv");
    }

    #[test]
    fn totals() {
        let rs = sample_set();
        assert_eq!(rs.total_ops(), 1836);
        assert_eq!(rs.total_processes(), 2);
    }

    #[test]
    fn malformed_tsv_rejected() {
        assert!(ResultSet::from_tsv("a\tb\tc\n", "x", 1, 1).is_err());
    }
}
