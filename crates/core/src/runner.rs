//! The benchmark runner: the master's nested loops of paper §3.3.3.
//!
//! For every operation and every `(nodes, processes-per-node)` combination
//! of the execution plan, the runner executes the three phases —
//! `prepare` → (optional cache drop) → `doBench` → `cleanup` — with
//! barriers between them, collects the per-process time logs, and runs the
//! preprocessing step. Two backends are supported:
//!
//! * [`Runner::run_simulated`] drives a [`dfs::DistFs`] model on virtual
//!   time (a fresh model per combination, like a fresh test directory),
//! * [`Runner::run_real`] drives real [`memfs::Vfs`] backends with worker
//!   threads on one node.

use cluster::{
    execution_plan, run_sim, run_threads, Placement, RealOpStream, RunSpec, SimConfig,
    SimRunResult, ThreadRunConfig, WorkerSpec,
};
use dfs::{ClientCtx, DistFs, MetaOp};
use memfs::Vfs;
use simcore::{telemetry, DetRng, SimTime};

use crate::params::{BenchParams, WorkerCtx};
use crate::plugin::{plugin_by_name, BenchmarkPlugin, ProblemMode};
use crate::preprocess::{preprocess, Preprocessed};
use crate::profile::EnvironmentProfile;
use crate::result::ResultSet;

/// One completed benchmark iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Operation name.
    pub operation: String,
    /// Nodes used.
    pub nodes: usize,
    /// Processes per node.
    pub ppn: usize,
    /// The raw result set (listing 3.3 data).
    pub result_set: ResultSet,
    /// Preprocessed summary (listings 3.4/3.5 data).
    pub pre: Preprocessed,
}

/// All results of one runner invocation plus the environment profile.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Per-iteration results, in execution order.
    pub results: Vec<BenchResult>,
    /// Captured environment.
    pub profile: EnvironmentProfile,
    /// The parameters used.
    pub params: BenchParams,
}

impl Campaign {
    /// The summary TSV across all iterations (one listing-3.5 line each).
    pub fn summary_tsv(&self) -> String {
        let mut out =
            String::from("Operation\tNodes\tPPN\tProcesses\tStonewallOpsPerSec\tFixedNAverages\n");
        for r in &self.results {
            out.push_str(&r.pre.summary_tsv());
        }
        out
    }

    /// Find a result by `(operation, nodes, ppn)`.
    pub fn find(&self, operation: &str, nodes: usize, ppn: usize) -> Option<&BenchResult> {
        self.results
            .iter()
            .find(|r| r.operation == operation && r.nodes == nodes && r.ppn == ppn)
    }

    /// Write result TSVs, the summary, and the profile into a directory.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the directory or writing files.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for r in &self.results {
            std::fs::write(dir.join(r.result_set.file_name()), r.result_set.to_tsv())?;
            std::fs::write(
                dir.join(format!(
                    "summary-{}-{}-{}.tsv",
                    r.operation,
                    r.nodes,
                    r.result_set.total_processes()
                )),
                r.pre.interval_tsv(),
            )?;
        }
        std::fs::write(dir.join("summary.tsv"), self.summary_tsv())?;
        std::fs::write(dir.join("profile.json"), self.profile.to_json())?;
        Ok(())
    }
}

/// The benchmark runner.
#[derive(Debug, Clone)]
pub struct Runner {
    params: BenchParams,
    fixed_ns: Vec<u64>,
}

impl Runner {
    /// Create a runner for the given parameters.
    pub fn new(params: BenchParams) -> Self {
        let fixed_ns = vec![params.problem_size, params.problem_size * 5];
        Runner { params, fixed_ns }
    }

    /// Override the fixed-operation-count averages computed per result
    /// (the "strong scaling" averages of §3.3.9).
    pub fn with_fixed_ns(mut self, ns: Vec<u64>) -> Self {
        self.fixed_ns = ns;
        self
    }

    /// The parameters.
    pub fn params(&self) -> &BenchParams {
        &self.params
    }

    fn resolve_plugins(&self) -> Vec<Box<dyn BenchmarkPlugin>> {
        self.params
            .operations
            .iter()
            .map(|name| {
                plugin_by_name(name)
                    .unwrap_or_else(|| panic!("unknown benchmark operation '{name}'"))
            })
            .collect()
    }

    /// Run all operations over the full execution plan against simulated
    /// distributed-file-system models.
    ///
    /// `model_factory` is called once per iteration so every combination
    /// starts from a pristine namespace, matching the paper's per-run test
    /// directories.
    ///
    /// # Panics
    ///
    /// Panics on unknown operation names.
    pub fn run_simulated(
        &self,
        placement: &Placement,
        model_factory: impl Fn() -> Box<dyn DistFs>,
        sim_config: &SimConfig,
    ) -> Campaign {
        let plan = execution_plan(placement, self.params.node_step, self.params.ppn_step);
        let plugins = self.resolve_plugins();
        let mut results = Vec::new();
        for spec in &plan {
            for plugin in &plugins {
                telemetry::count("runner.combos", 1);
                let mut model = model_factory();
                let run =
                    self.run_one_sim(placement, spec, plugin.as_ref(), &mut model, sim_config);
                let rs = ResultSet::from_run(plugin.name(), spec.nodes, spec.ppn, &run);
                let pre = preprocess(&rs, &self.fixed_ns);
                results.push(BenchResult {
                    operation: plugin.name().to_owned(),
                    nodes: spec.nodes,
                    ppn: spec.ppn,
                    result_set: rs,
                    pre,
                });
            }
        }
        Campaign {
            results,
            profile: EnvironmentProfile::capture(&self.params.label),
            params: self.params.clone(),
        }
    }

    /// Run a single `(operation, RunSpec)` iteration on a model. Exposed so
    /// experiment binaries can control the model instance and disturbances.
    pub fn run_one_sim(
        &self,
        placement: &Placement,
        spec: &RunSpec,
        plugin: &dyn BenchmarkPlugin,
        model: &mut Box<dyn DistFs>,
        sim_config: &SimConfig,
    ) -> SimRunResult {
        // nodes participating in this spec, re-indexed 0..spec.nodes
        let mut node_map: Vec<usize> = spec.workers.iter().map(|&(_, n)| n).collect();
        node_map.sort_unstable();
        node_map.dedup();
        let node_names: Vec<String> = node_map
            .iter()
            .map(|&n| placement.node_names[n].clone())
            .collect();
        let local_workers: Vec<(usize, usize)> = spec
            .workers
            .iter()
            .map(|&(_, node)| {
                let local = node_map
                    .iter()
                    .position(|&m| m == node)
                    .expect("node is in map");
                (local, 0)
            })
            .collect();
        // assign per-node process indexes
        let mut per_node_count = vec![0usize; node_map.len()];
        let local_workers: Vec<(usize, usize)> = local_workers
            .into_iter()
            .map(|(node, _)| {
                let proc = per_node_count[node];
                per_node_count[node] += 1;
                (node, proc)
            })
            .collect();
        let ctxs = WorkerCtx::build(&local_workers, &self.params, node_map.len());

        model.register_clients(node_map.len());
        // --- prepare phase (unmeasured; semantic application only) --------
        let mut rng = DetRng::new(sim_config.seed ^ 0x5051_4541);
        for ctx in &ctxs {
            for op in plugin.prepare_ops(ctx) {
                telemetry::count("runner.prepare_ops", 1);
                let client = ClientCtx {
                    node: ctx.node,
                    proc: ctx.proc,
                };
                let _ = model.plan(client, &op, SimTime::ZERO, &mut rng);
            }
        }
        if plugin.drop_caches_after_prepare() {
            for node in 0..node_map.len() {
                model.drop_caches(node);
            }
        }

        // --- measured phase ------------------------------------------------
        let workers: Vec<WorkerSpec> = ctxs
            .iter()
            .map(|c| WorkerSpec::new(c.node, c.proc))
            .collect();
        let streams: Vec<Box<dyn cluster::OpStream>> = ctxs
            .iter()
            .map(|c| {
                let s = plugin.stream(c);
                let b: Box<dyn cluster::OpStream> = Box::new(s);
                b
            })
            .collect();
        let mut cfg = sim_config.clone();
        cfg.sample_interval = self.params.sample_interval;
        cfg.duration = match plugin.mode() {
            ProblemMode::Timed => Some(self.params.duration),
            ProblemMode::Fixed => None,
        };
        let run = run_sim(model.as_mut(), &node_names, workers, streams, &cfg);

        // --- cleanup phase (unmeasured) -------------------------------------
        let mut rng = DetRng::new(sim_config.seed ^ 0x434c_4e55);
        for (ctx, trace) in ctxs.iter().zip(&run.workers) {
            for op in plugin.cleanup_ops(ctx, trace.ops_done) {
                telemetry::count("runner.cleanup_ops", 1);
                let client = ClientCtx {
                    node: ctx.node,
                    proc: ctx.proc,
                };
                let _ = model.plan(client, &op, SimTime::ZERO, &mut rng);
            }
        }
        run
    }

    /// Run all operations against real [`Vfs`] backends on this machine —
    /// intra-node parallelism only (the substitution for multi-machine MPI,
    /// see DESIGN.md). The processes-per-node sweep follows `ppn_step` up
    /// to `max_ppn`.
    ///
    /// # Panics
    ///
    /// Panics on unknown operation names.
    pub fn run_real(
        &self,
        vfs_factory: impl Fn(usize) -> Box<dyn Vfs> + Sync,
        max_ppn: usize,
        config: &ThreadRunConfig,
    ) -> Campaign {
        let plugins = self.resolve_plugins();
        let mut results = Vec::new();
        let mut ppn = 1;
        while ppn <= max_ppn {
            for plugin in &plugins {
                telemetry::count("runner.combos", 1);
                let workers: Vec<(usize, usize)> = (0..ppn).map(|p| (0usize, p)).collect();
                let ctxs = WorkerCtx::build(&workers, &self.params, 1);
                // prepare
                for ctx in &ctxs {
                    let mut vfs = vfs_factory(ctx.index);
                    for op in plugin.prepare_ops(ctx) {
                        let _ = cluster::ensure_parents(vfs.as_mut(), op.primary_path());
                        let _ = cluster::exec_op(vfs.as_mut(), &op);
                    }
                    if plugin.drop_caches_after_prepare() {
                        let _ = vfs.drop_caches();
                    }
                }
                // measured
                let streams: Vec<RealOpStream> = ctxs
                    .iter()
                    .map(|c| {
                        let s = plugin.stream(c);
                        let b: RealOpStream = Box::new(s);
                        b
                    })
                    .collect();
                let mut cfg = config.clone();
                cfg.duration = match plugin.mode() {
                    ProblemMode::Timed => Some(std::time::Duration::from_secs_f64(
                        self.params.duration.as_secs_f64(),
                    )),
                    ProblemMode::Fixed => None,
                };
                let run = run_threads(&vfs_factory, streams, &cfg);
                // cleanup
                for (ctx, trace) in ctxs.iter().zip(&run.workers) {
                    let mut vfs = vfs_factory(ctx.index);
                    for op in plugin.cleanup_ops(ctx, trace.ops_done) {
                        let _ = cluster::exec_op(vfs.as_mut(), &op);
                    }
                }
                let rs = ResultSet::from_run(plugin.name(), 1, ppn, &run);
                let pre = preprocess(&rs, &self.fixed_ns);
                results.push(BenchResult {
                    operation: plugin.name().to_owned(),
                    nodes: 1,
                    ppn,
                    result_set: rs,
                    pre,
                });
            }
            ppn = if ppn == 1 && self.params.ppn_step > 1 {
                self.params.ppn_step
            } else {
                ppn + self.params.ppn_step
            };
        }
        Campaign {
            results,
            profile: EnvironmentProfile::capture(&self.params.label),
            params: self.params.clone(),
        }
    }

    /// Collect `(x = processes, y = stonewall ops/s)` points for one
    /// operation from a campaign — the data behind Fig. 3.12.
    pub fn processes_series(campaign: &Campaign, operation: &str) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = campaign
            .results
            .iter()
            .filter(|r| r.operation == operation)
            .map(|r| (r.result_set.total_processes() as f64, r.pre.stonewall_avg))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        pts
    }

    /// Collect `(x = nodes, y = stonewall ops/s)` points for one operation
    /// at a fixed ppn — the data behind Fig. 3.13.
    pub fn nodes_series(campaign: &Campaign, operation: &str, ppn: usize) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = campaign
            .results
            .iter()
            .filter(|r| r.operation == operation && r.ppn == ppn)
            .map(|r| (r.nodes as f64, r.pre.stonewall_avg))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        pts
    }
}

/// Helper for experiment binaries: run one operation at one combination on
/// a model with custom disturbances, returning the preprocessed result.
pub fn run_single(
    params: &BenchParams,
    operation: &str,
    nodes: usize,
    ppn: usize,
    model: &mut Box<dyn DistFs>,
    sim_config: &SimConfig,
) -> (ResultSet, Preprocessed) {
    let runner = Runner::new(params.clone());
    let plugin = plugin_by_name(operation)
        .unwrap_or_else(|| panic!("unknown benchmark operation '{operation}'"));
    // synthesize a placement with exactly nodes×ppn workers (+1 master slot)
    let mut slots = vec!["node0".to_owned()]; // master
    for p in 0..ppn + 1 {
        for n in 0..nodes {
            if p == 0 && n == 0 {
                continue; // master already there
            }
            let _ = p;
            slots.push(format!("node{n}"));
        }
    }
    let world = cluster::MpiWorld::new(slots);
    let placement = Placement::discover(&world);
    let spec = placement
        .select(nodes, ppn)
        .unwrap_or_else(|| panic!("cannot place {nodes}x{ppn}"));
    let spec = RunSpec {
        nodes,
        ppn,
        workers: spec,
    };
    let run = runner.run_one_sim(&placement, &spec, plugin.as_ref(), model, sim_config);
    let rs = ResultSet::from_run(operation, nodes, ppn, &run);
    let pre = preprocess(&rs, &runner.fixed_ns);
    (rs, pre)
}

/// Execute a list of operations directly against a model (used by
/// experiment binaries for ad-hoc preparation).
pub fn apply_ops_to_model(model: &mut dyn DistFs, node: usize, ops: &[MetaOp], seed: u64) {
    let mut rng = DetRng::new(seed);
    for op in ops {
        let _ = model.plan(ClientCtx { node, proc: 0 }, op, SimTime::ZERO, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::MpiWorld;
    use dfs::{LocalFs, NfsFs};
    use simcore::SimDuration;

    fn quick_params(ops: &[&str]) -> BenchParams {
        BenchParams {
            operations: ops.iter().map(|s| s.to_string()).collect(),
            problem_size: 200,
            duration: SimDuration::from_secs(2),
            label: "test".into(),
            ..BenchParams::default()
        }
    }

    #[test]
    fn simulated_campaign_covers_plan() {
        let params = quick_params(&["MakeFiles", "StatFiles"]);
        let runner = Runner::new(params);
        let world = MpiWorld::uniform(3, 2);
        let placement = Placement::discover(&world);
        let campaign = runner.run_simulated(
            &placement,
            || Box::new(NfsFs::with_defaults()),
            &SimConfig::default(),
        );
        // plan: ppn 1 → nodes 1..3; ppn 2 → nodes 1..2  = 5 combos × 2 ops
        assert_eq!(campaign.results.len(), 10);
        for r in &campaign.results {
            assert!(
                r.result_set.total_ops() > 0,
                "{}/{}x{}",
                r.operation,
                r.nodes,
                r.ppn
            );
            assert!(r.pre.stonewall_avg > 0.0);
        }
        // MakeFiles throughput grows from 1 to 3 nodes
        let s = Runner::nodes_series(&campaign, "MakeFiles", 1);
        assert!(s.len() >= 3);
        assert!(s[2].1 > s[0].1, "3-node run beats 1-node: {s:?}");
        // summary includes every combination
        let summary = campaign.summary_tsv();
        assert_eq!(summary.lines().count(), 11);
    }

    #[test]
    fn stat_files_benefits_from_cache_nocache_does_not() {
        let params = quick_params(&["StatFiles", "StatNocacheFiles"]);
        let runner = Runner::new(params);
        let world = MpiWorld::uniform(2, 1);
        let placement = Placement::discover(&world);
        let campaign = runner.run_simulated(
            &placement,
            || Box::new(NfsFs::with_defaults()),
            &SimConfig::default(),
        );
        let cached = campaign.find("StatFiles", 1, 1).unwrap().pre.stonewall_avg;
        let uncached = campaign
            .find("StatNocacheFiles", 1, 1)
            .unwrap()
            .pre
            .stonewall_avg;
        assert!(
            cached > uncached * 3.0,
            "cached stats are much faster: {cached} vs {uncached}"
        );
    }

    #[test]
    fn real_mode_sweeps_ppn() {
        let params = quick_params(&["MakeFiles"]);
        let mut params = params;
        params.duration = SimDuration::from_millis(300);
        let runner = Runner::new(params);
        let campaign = runner.run_real(
            |_| Box::new(memfs::MemFs::new()),
            2,
            &ThreadRunConfig::default(),
        );
        assert_eq!(campaign.results.len(), 2);
        for r in &campaign.results {
            assert!(r.result_set.total_ops() > 0);
        }
    }

    #[test]
    fn campaign_writes_result_files() {
        let params = quick_params(&["DeleteFiles"]);
        let runner = Runner::new(params);
        let world = MpiWorld::uniform(2, 1);
        let placement = Placement::discover(&world);
        let campaign = runner.run_simulated(
            &placement,
            || Box::new(LocalFs::with_defaults()),
            &SimConfig::default(),
        );
        let dir = std::env::temp_dir().join(format!("dmetabench-test-{}", std::process::id()));
        campaign.write_to_dir(&dir).unwrap();
        assert!(dir.join("summary.tsv").exists());
        assert!(dir.join("profile.json").exists());
        assert!(dir.join("results-DeleteFiles-1-1.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_single_produces_consistent_result() {
        let params = quick_params(&["MakeFiles"]);
        let mut model: Box<dyn DistFs> = Box::new(NfsFs::with_defaults());
        let (rs, pre) = run_single(
            &params,
            "MakeFiles",
            2,
            2,
            &mut model,
            &SimConfig::default(),
        );
        assert_eq!(rs.total_processes(), 4);
        assert!(pre.stonewall_avg > 0.0);
        assert_eq!(pre.nodes, 2);
        assert_eq!(pre.ppn, 2);
    }

    #[test]
    fn multinode_stat_misses_caches() {
        // StatMultinodeFiles must be slower than StatFiles on NFS because
        // the peer's files are not in the local attribute cache.
        let params = quick_params(&["StatFiles", "StatMultinodeFiles"]);
        let runner = Runner::new(params);
        let world = MpiWorld::uniform(3, 1);
        let placement = Placement::discover(&world);
        let campaign = runner.run_simulated(
            &placement,
            || Box::new(NfsFs::with_defaults()),
            &SimConfig::default(),
        );
        let local = campaign.find("StatFiles", 2, 1).unwrap().pre.stonewall_avg;
        let multi = campaign
            .find("StatMultinodeFiles", 2, 1)
            .unwrap()
            .pre
            .stonewall_avg;
        assert!(
            local > multi * 2.0,
            "multinode stats must RPC: {local} vs {multi}"
        );
    }
}
