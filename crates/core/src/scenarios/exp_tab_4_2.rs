//! TAB-4.2 — Harness overhead (paper §4.2.2, Table 4.2).
//!
//! The paper compares a Python loop creating 200 000 files against a pure C
//! loop on `/dev/shm` (2.1 s vs 0.62 s) and argues the overhead is a fixed
//! per-operation cost that cancels out of comparative measurements. Our
//! harness's equivalent overhead is dynamic plugin dispatch + `MetaOp`
//! allocation vs. a hand-inlined loop on the same in-memory file system.
//!
//! The only wall-clock (non-deterministic) scenario in the suite: its
//! metrics are informational and exempt from baseline value comparison.

use crate::suite::{ExpTable, ReportBuilder};
use crate::{plugin_by_name, BenchParams, WorkerCtx};
use memfs::{MemFs, Vfs};
use std::time::Instant;

const N: u64 = 200_000;

fn raw_loop() -> f64 {
    let mut fs = MemFs::new();
    fs.mkdir("/w").expect("fresh fs");
    let t0 = Instant::now();
    for i in 0..N {
        let fd = fs.create(&format!("/w/{i}")).expect("unique names");
        fs.close(fd).expect("open handle");
    }
    t0.elapsed().as_secs_f64()
}

fn harness_loop() -> f64 {
    let mut fs = MemFs::new();
    let params = BenchParams {
        problem_size: N, // one giant directory chunk, like the raw loop
        workdir: "/w".into(),
        ..BenchParams::default()
    };
    let ctx = WorkerCtx::build(&[(0, 0)], &params, 1).remove(0);
    let plugin = plugin_by_name("MakeFiles").expect("built-in plugin");
    let mut stream = plugin.stream(&ctx);
    let t0 = Instant::now();
    for i in 0..N {
        let op = stream(i).expect("timed stream never ends");
        if i == 0 {
            cluster::ensure_parents(&mut fs, op.primary_path()).expect("mkdir chain");
        }
        cluster::exec_op(&mut fs, &op).expect("unique names");
    }
    t0.elapsed().as_secs_f64()
}

pub fn run(b: &mut ReportBuilder) {
    // warm up allocators, then measure
    let _ = raw_loop();
    let raw = raw_loop();
    let harness = harness_loop();
    let mut t = ExpTable::new(
        "Table 4.2 — loop runtime for 200 000 file creations (in-memory fs)",
        &["variant", "runtime [s]", "per-op overhead [ns]"],
    );
    t.row(vec![
        "hand-inlined loop (\"C\")".into(),
        format!("{raw:.3}"),
        "-".into(),
    ]);
    t.row(vec![
        "plugin dispatch loop (\"Python\")".into(),
        format!("{harness:.3}"),
        format!("{:.0}", (harness - raw).max(0.0) * 1e9 / N as f64),
    ]);
    b.table(t);
    b.note(format!(
        "\noverhead factor {:.2}x (paper's Python/C factor was {:.2}x; their point — the overhead",
        harness / raw,
        2.1 / 0.62
    ));
    b.note(
        "is constant per operation and vanishes against slow distributed file systems — holds here too)."
            .to_owned(),
    );

    b.metric_info("raw_loop_s", raw);
    b.metric_info("harness_loop_s", harness);
    b.metric_info("overhead_factor", harness / raw);
    b.check(
        "dispatch_overhead_stays_moderate",
        harness / raw < 3.5,
        format!("{:.2}x", harness / raw),
    );
    b.summary(format!(
        "dispatch loop a constant ~{:.1}× over the inlined loop (wall-clock, varies per machine)",
        harness / raw
    ));
}
