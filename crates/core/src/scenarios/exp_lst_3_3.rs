//! LST-3.3/3.4/3.5 — The StatNocacheFiles result pipeline (paper §3.3.9).
//!
//! Runs StatNocacheFiles with four processes on two nodes (problem size
//! 5 000 per process, as in listing 3.3) on the NFS/WAFL model, then prints
//! the three artifacts of the paper's preprocessing pipeline: the raw
//! result TSV (listing 3.3), the interval summary (listing 3.4) and the
//! one-line summary with stonewall and fixed-N averages (listing 3.5).
//! Absolute numbers differ from the paper's production filer; the *format*
//! and the computation are identical and the magnitudes comparable
//! (paper: stonewall 22 191 ops/s on 4 processes).

use crate::suite::{fmt_ops, ReportBuilder};
use crate::{run_single, BenchParams};
use cluster::SimConfig;
use dfs::{DistFs, NfsFs};
use simcore::SimDuration;

pub fn run(b: &mut ReportBuilder) {
    let params = BenchParams {
        operations: vec!["StatNocacheFiles".into()],
        problem_size: 5000,
        sample_interval: SimDuration::from_millis(100),
        label: "lst-3-3".into(),
        ..BenchParams::default()
    };
    let mut model: Box<dyn DistFs> = Box::new(NfsFs::with_defaults());
    let (rs, pre) = run_single(
        &params,
        "StatNocacheFiles",
        2,
        2,
        &mut model,
        &SimConfig::default(),
    );

    b.note(format!(
        "--- listing 3.3: raw result file {} (first/last rows) ---",
        rs.file_name()
    ));
    let tsv = rs.to_tsv();
    let lines: Vec<&str> = tsv.lines().collect();
    for l in lines.iter().take(6) {
        b.note((*l).to_owned());
    }
    b.note("[...]".to_owned());
    for l in lines.iter().rev().take(3).collect::<Vec<_>>().iter().rev() {
        b.note((**l).to_owned());
    }

    b.note("\n--- listing 3.4: interval summary ---".to_owned());
    b.note(pre.interval_tsv());
    b.note("--- listing 3.5: performance summary ---".to_owned());
    b.note(pre.summary_tsv());
    b.note(format!(
        "\nstonewall {:.0} ops/s across 4 uncached stat processes (paper measured 22 191 on its filer)",
        pre.stonewall_avg
    ));

    b.metric_exact("total_ops", rs.total_ops() as f64);
    b.metric_tol("stonewall_avg", pre.stonewall_avg, 1e-6);
    b.check(
        "full_run_completes",
        rs.total_ops() == 4 * 5000,
        format!("{} ops of 20 000", rs.total_ops()),
    );
    b.check(
        "sane_uncached_stat_throughput",
        pre.stonewall_avg > 1000.0,
        format!("{} ops/s", pre.stonewall_avg),
    );
    b.artifact("lst_3_3_results.tsv", tsv.clone());
    b.artifact("lst_3_3_intervals.tsv", pre.interval_tsv());
    b.summary(format!(
        "same format/row structure; stonewall {} ops/s on the modelled filer",
        fmt_ops(pre.stonewall_avg)
    ));
}
