//! EXP-4.3.4 — Observing internal allocation processes (paper §4.3.4).
//!
//! The WAFL-specific MakeFiles64byte / MakeFiles65byte probes: 64-byte files
//! fit inline in the inode (no block allocation), 65-byte files force a
//! block per file. Shapes to reproduce:
//!
//! * 64-byte creates run close to empty-file creates,
//! * 65-byte creates are measurably slower (allocator work per create),
//!   and the server's block counter grows by exactly one block per file,
//! * the extra dirty data makes consistency points heavier.

use crate::suite::{create_streams, fmt_ops, make_workers, node_names, ExpTable, ReportBuilder};
use crate::{preprocess, ResultSet};
use cluster::SimConfig;
use dfs::NfsFs;
use simcore::SimDuration;

struct Outcome {
    ops_per_sec: f64,
    files: u64,
    blocks_used: u64,
    consistency_points: u64,
}

fn run_one(data_bytes: u64) -> Outcome {
    let mut model = NfsFs::with_defaults();
    let free_before = model.server_fs().stats().free_blocks;
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(30));
    cfg.node_cores = 1;
    let workers = make_workers(4, 1);
    let streams = create_streams(&workers, data_bytes);
    let res = cluster::run_sim(&mut model, &node_names(4), workers, streams, &cfg);
    let rs = ResultSet::from_run("MakeFilesNbyte", 4, 1, &res);
    let pre = preprocess(&rs, &[]);
    Outcome {
        ops_per_sec: pre.stonewall_avg,
        files: res.total_ops(),
        blocks_used: free_before - model.server_fs().stats().free_blocks,
        consistency_points: model.consistency_points(),
    }
}

pub fn run(b: &mut ReportBuilder) {
    let empty = run_one(0);
    let small = run_one(64);
    let big = run_one(65);

    let mut t = ExpTable::new(
        "§4.3.4 — WAFL allocation probe: MakeFiles / MakeFiles64byte / MakeFiles65byte",
        &[
            "payload",
            "ops/s",
            "files created",
            "blocks allocated",
            "blocks per file",
            "consistency points",
        ],
    );
    for (label, o) in [("0 B", &empty), ("64 B", &small), ("65 B", &big)] {
        t.row(vec![
            label.into(),
            fmt_ops(o.ops_per_sec),
            o.files.to_string(),
            o.blocks_used.to_string(),
            format!("{:.2}", o.blocks_used as f64 / o.files.max(1) as f64),
            o.consistency_points.to_string(),
        ]);
    }
    b.table(t);

    // the 64/65-byte boundary is an exact architectural fact: zero drift
    b.metric_exact(
        "blocks_per_file_64b",
        small.blocks_used as f64 / small.files.max(1) as f64,
    );
    b.metric_exact(
        "blocks_per_file_65b",
        big.blocks_used as f64 / big.files.max(1) as f64,
    );
    b.metric_tol("ops_empty", empty.ops_per_sec, 1e-6);
    b.metric_tol("ops_64b", small.ops_per_sec, 1e-6);
    b.metric_tol("ops_65b", big.ops_per_sec, 1e-6);
    b.metric_exact("consistency_points_65b", big.consistency_points as f64);

    b.check(
        "64b_files_stored_inline",
        small.blocks_used == 0,
        format!("{} blocks for {} files", small.blocks_used, small.files),
    );
    b.check(
        "65b_files_allocate_one_block_each",
        big.blocks_used == big.files,
        format!("{} blocks for {} files", big.blocks_used, big.files),
    );
    b.check(
        "inline_creates_outrun_allocating",
        small.ops_per_sec > big.ops_per_sec,
        format!("{} vs {}", small.ops_per_sec, big.ops_per_sec),
    );
    b.check(
        "64b_close_to_empty_creates",
        small.ops_per_sec > empty.ops_per_sec * 0.85,
        format!("{} vs {}", small.ops_per_sec, empty.ops_per_sec),
    );
    b.summary(format!(
        "64 B: 0 blocks, ops/s within {:.1} % of empty creates; 65 B: exactly {:.2} blocks/file, measurably slower",
        100.0 * (1.0 - small.ops_per_sec / empty.ops_per_sec).abs(),
        big.blocks_used as f64 / big.files.max(1) as f64
    ));
}
