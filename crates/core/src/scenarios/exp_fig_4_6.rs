//! FIG-4.6 — Server saturation and WAFL consistency points (paper §4.2.3).
//!
//! MakeFiles from 20 nodes × 1 ppn saturates the filer; the throughput
//! trace shows the sawtooth of WAFL consistency points (triggered at the
//! latest 10 s after the previous one). In run (b) a CPU hog obstructs one
//! node starting ≈20 s: because the server — not the clients — is the
//! bottleneck, total throughput barely changes, but the per-process COV
//! still exposes the disturbance. That asymmetry is the paper's core
//! argument for time-interval logging over summary numbers.

use crate::suite::{fmt_ops, run_makefiles, ExpTable, ReportBuilder};
use crate::{chart, preprocess, Preprocessed, ResultSet};
use cluster::{Disturbance, SimConfig};
use dfs::NfsFs;
use simcore::{SimDuration, SimTime};

fn run_one(hog: bool) -> (Preprocessed, u64) {
    let mut model = NfsFs::with_defaults();
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(60));
    cfg.node_cores = 1;
    if hog {
        cfg.disturbances.push(Disturbance::CpuHog {
            node: 0,
            start: SimTime::from_secs(20),
            end: SimTime::from_secs(40),
            weight: 8.0,
        });
    }
    let res = run_makefiles(&mut model, 20, 1, &cfg);
    let rs = ResultSet::from_run("MakeFiles", 20, 1, &res);
    (preprocess(&rs, &[]), model.consistency_points())
}

fn window(pre: &Preprocessed, from: f64, to: f64) -> (f64, f64) {
    let rows: Vec<_> = pre
        .intervals
        .iter()
        .filter(|r| r.timestamp > from && r.timestamp <= to)
        .collect();
    let tp = rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64;
    let cov = rows.iter().map(|r| r.cov).sum::<f64>() / rows.len().max(1) as f64;
    (tp, cov)
}

pub fn run(b: &mut ReportBuilder) {
    let (clean, cps) = run_one(false);
    let (hogged, _) = run_one(true);

    // sawtooth detection: count deep throughput dips after warmup
    let peak = clean
        .intervals
        .iter()
        .filter(|r| r.timestamp > 5.0)
        .map(|r| r.throughput)
        .fold(0.0, f64::max);
    let mut dips = 0;
    let mut in_dip = false;
    for r in clean.intervals.iter().filter(|r| r.timestamp > 5.0) {
        let low = r.throughput < peak * 0.5;
        if low && !in_dip {
            dips += 1;
        }
        in_dip = low;
    }

    let mut t = ExpTable::new(
        "Fig. 4.6 — MakeFiles 20 nodes × 1 ppn on NFS (saturated filer)",
        &["metric", "clean run (a)", "hog on node 0 (b)"],
    );
    let (ctp, ccov) = window(&clean, 20.0, 40.0);
    let (htp, hcov) = window(&hogged, 20.0, 40.0);
    t.row(vec![
        "ops/s in 20–40 s window".into(),
        fmt_ops(ctp),
        fmt_ops(htp),
    ]);
    t.row(vec![
        "mean COV in 20–40 s window".into(),
        format!("{ccov:.3}"),
        format!("{hcov:.3}"),
    ]);
    t.row(vec![
        "consistency points (60 s run)".into(),
        cps.to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "sawtooth dips detected".into(),
        dips.to_string(),
        "-".into(),
    ]);
    b.table(t);

    b.note(chart::time_chart(&clean));
    b.artifact("fig_4_6_clean.svg", chart::svg_time_chart(&clean));
    b.artifact("fig_4_6_hogged.svg", chart::svg_time_chart(&hogged));

    b.metric_exact("consistency_points", cps as f64);
    b.metric_exact("sawtooth_dips", dips as f64);
    b.metric_tol("clean_ops_20_40s", ctp, 1e-6);
    b.metric_tol("hogged_ops_20_40s", htp, 1e-6);
    b.metric_tol("clean_cov_20_40s", ccov, 1e-6);
    b.metric_tol("hogged_cov_20_40s", hcov, 1e-6);

    b.check(
        "saturated_run_crosses_consistency_points",
        cps >= 4,
        format!("{cps} in 60 s"),
    );
    b.check(
        "throughput_trace_shows_cp_sawtooth",
        dips >= 3,
        format!("{dips} dips"),
    );
    let tp_change = (ctp - htp).abs() / ctp;
    b.check(
        "hog_invisible_in_totals",
        tp_change < 0.15,
        format!("{tp_change:.3} relative change with 1 of 20 clients slowed"),
    );
    b.check(
        "hog_visible_in_cov",
        hcov > ccov * 1.5,
        format!("{ccov:.3} → {hcov:.3}"),
    );
    b.summary(format!(
        "{cps} consistency points and {dips} sawtooth dips in 60 s; totals {} vs {} ops/s with the hog, COV {:.3} → {:.3}",
        fmt_ops(ctp),
        fmt_ops(htp),
        ccov,
        hcov
    ));
}
