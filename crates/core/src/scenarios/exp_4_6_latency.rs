//! EXP-4.6 — Influence of network latency on metadata performance
//! (paper §4.6).
//!
//! Single-client file creation while the one-way network latency sweeps
//! from LAN (0.05 ms) to WAN (10 ms). Shapes to reproduce:
//!
//! * synchronous per-op RPC protocols (NFS, and Lustre's modifying RPCs)
//!   degrade roughly as `1 / (RTT + service)` — at 10 ms one-way latency a
//!   single client manages only ~50 creates/s no matter how fast the
//!   server is,
//! * cached reads (`stat` after create on the same node) are *immune* to
//!   latency — the motivation for client caching in §2.6,
//! * with more concurrent processes the aggregate recovers (latency
//!   hiding), which is the thesis' "inherently parallel metadata
//!   operations" argument (§5.3.2).

use crate::chart;
use crate::suite::{fmt_ops, node_names, run_makefiles, ExpTable, ReportBuilder};
use cluster::{run_sim, OpStream, SimConfig, WorkerSpec};
use dfs::{DistFs, LustreConfig, LustreFs, MetaOp, NfsConfig, NfsFs};
use netsim::LinkSpec;
use simcore::SimDuration;

fn nfs_with_latency(one_way_ms: f64) -> Box<dyn DistFs> {
    let mut cfg = NfsConfig::default();
    cfg.link = LinkSpec::wan(SimDuration::from_secs_f64(one_way_ms / 1_000.0));
    Box::new(NfsFs::new(cfg))
}

fn lustre_with_latency(one_way_ms: f64) -> Box<dyn DistFs> {
    let mut cfg = LustreConfig::default();
    cfg.link = LinkSpec::wan(SimDuration::from_secs_f64(one_way_ms / 1_000.0));
    Box::new(LustreFs::new(cfg))
}

fn create_throughput(mut model: Box<dyn DistFs>, ppn: usize) -> f64 {
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(20));
    let res = run_makefiles(model.as_mut(), 1, ppn, &cfg);
    res.stonewall_ops_per_sec()
}

/// Per-operation latency percentiles for one setting.
fn create_latency(mut model: Box<dyn DistFs>) -> (f64, f64, f64) {
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(10));
    let res = run_makefiles(model.as_mut(), 1, 1, &cfg);
    let h = res.latency();
    (
        h.percentile(0.5).as_secs_f64() * 1e3,
        h.percentile(0.99).as_secs_f64() * 1e3,
        h.mean().as_secs_f64() * 1e3,
    )
}

/// stat of files just created by the same node — answered from the client
/// cache, so latency-independent.
fn cached_stat_throughput(mut model: Box<dyn DistFs>) -> f64 {
    let workers = vec![WorkerSpec::new(0, 0)];
    // interleave create + 4 stats of the same file: the stats are cache hits
    let streams: Vec<Box<dyn OpStream>> = vec![Box::new(move |i: u64| {
        let file = i / 5;
        if i.is_multiple_of(5) {
            Some(MetaOp::Create {
                path: format!("/bench/p0/f{file}"),
                data_bytes: 0,
            })
        } else {
            Some(MetaOp::Stat {
                path: format!("/bench/p0/f{file}"),
            })
        }
    })];
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(20));
    let res = run_sim(model.as_mut(), &node_names(1), workers, streams, &cfg);
    res.stonewall_ops_per_sec()
}

pub fn run(b: &mut ReportBuilder) {
    let latencies_ms = [0.05f64, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0];
    let mut t = ExpTable::new(
        "§4.6 — single client creation throughput vs one-way network latency",
        &[
            "one-way latency [ms]",
            "NFS 1 proc",
            "NFS 8 procs",
            "Lustre 1 proc",
            "mixed create+stat (cached)",
        ],
    );
    let mut nfs1 = Vec::new();
    let mut nfs8 = Vec::new();
    let mut lus1 = Vec::new();
    let mut mixed = Vec::new();
    for &ms in &latencies_ms {
        let a = create_throughput(nfs_with_latency(ms), 1);
        let b_tp = create_throughput(nfs_with_latency(ms), 8);
        let c = create_throughput(lustre_with_latency(ms), 1);
        let d = cached_stat_throughput(nfs_with_latency(ms));
        t.row(vec![
            format!("{ms}"),
            fmt_ops(a),
            fmt_ops(b_tp),
            fmt_ops(c),
            fmt_ops(d),
        ]);
        nfs1.push(a);
        nfs8.push(b_tp);
        lus1.push(c);
        mixed.push(d);
    }
    b.table(t);

    let series = vec![
        chart::Series::new(
            "NFS 1 proc",
            latencies_ms
                .iter()
                .zip(&nfs1)
                .map(|(&x, &y)| (x, y))
                .collect(),
        ),
        chart::Series::new(
            "NFS 8 procs",
            latencies_ms
                .iter()
                .zip(&nfs8)
                .map(|(&x, &y)| (x, y))
                .collect(),
        ),
        chart::Series::new(
            "Lustre 1 proc",
            latencies_ms
                .iter()
                .zip(&lus1)
                .map(|(&x, &y)| (x, y))
                .collect(),
        ),
    ];
    b.artifact(
        "exp_4_6_latency.svg",
        chart::svg_chart(
            "Creation throughput vs one-way latency",
            "one-way latency [ms]",
            "ops/s",
            &series,
            720,
            480,
        ),
    );

    // --- per-op latency distribution ---------------------------------------
    let mut t2 = ExpTable::new(
        "§4.6 — per-create latency percentiles (NFS, 1 proc)",
        &["one-way latency [ms]", "p50 [ms]", "p99 [ms]", "mean [ms]"],
    );
    let mut p50s = Vec::new();
    for &ms in &[0.1f64, 1.0, 10.0] {
        let (p50, p99, mean) = create_latency(nfs_with_latency(ms));
        p50s.push(p50);
        t2.row(vec![
            format!("{ms}"),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
            format!("{mean:.2}"),
        ]);
    }
    b.table(t2);

    b.metric_tol("nfs1_lan", nfs1[0], 1e-6);
    b.metric_tol("nfs1_wan_10ms", nfs1[6], 1e-6);
    b.metric_tol("nfs8_wan_10ms", nfs8[6], 1e-6);
    b.metric_tol("mixed_wan_10ms", mixed[6], 1e-6);
    b.metric_tol("p50_wan_10ms", p50s[2], 1e-6);

    b.check(
        "median_latency_tracks_rtt",
        p50s[2] > p50s[0] * 10.0,
        format!("{p50s:?}"),
    );
    let ideal_at_10ms = 1.0 / 0.020; // 50 ops/s at 20 ms RTT
    b.check(
        "10ms_one_way_caps_sync_client_near_50ops",
        nfs1[6] < ideal_at_10ms * 1.2,
        format!("{} ops/s", nfs1[6]),
    );
    b.check(
        "lan_beats_wan_by_20x",
        nfs1[0] / nfs1[6] > 20.0,
        format!("{} vs {}", nfs1[0], nfs1[6]),
    );
    b.check(
        "concurrency_hides_latency",
        nfs8[6] > nfs1[6] * 5.0,
        format!("{} vs {}", nfs8[6], nfs1[6]),
    );
    // the create part still pays the RTT, but the 4 cached stats per create
    // keep the mixed workload far above the pure-create rate at high latency
    b.check(
        "cached_stats_latency_immune",
        mixed[6] > nfs1[6] * 3.0,
        format!("{} vs {}", mixed[6], nfs1[6]),
    );
    b.summary(format!(
        "NFS 1 proc: {} ops/s at 0.05 ms one-way → {} at 10 ms (≈1/RTT); 8 procs recover {:.0}×; create+cached-stat mix stays {:.0}× above pure creates at 10 ms",
        fmt_ops(nfs1[0]),
        fmt_ops(nfs1[6]),
        nfs8[6] / nfs1[6],
        mixed[6] / nfs1[6]
    ));
}
