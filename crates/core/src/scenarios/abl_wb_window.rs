//! ABLATION — Lustre metadata write-back window size (paper §4.8 / §2.6.4).
//!
//! The window bounds how many uncommitted operations a client may hold.
//! With a slow commit pipeline, a tiny window couples every operation to
//! the commit disk (RPC rate ≈ commit rate), while a large window lets the
//! client run at RPC speed for longer bursts before throttling to the same
//! steady state. Expected shape: burst length grows with the window; the
//! steady state is window-independent (it is the commit rate).

use crate::suite::{fmt_ops, run_makefiles, ExpTable, ReportBuilder};
use crate::{preprocess, Preprocessed, ResultSet};
use cluster::SimConfig;
use dfs::{LustreConfig, LustreFs};
use simcore::SimDuration;

/// Simulated run length; `burst_end` values are clamped here so the stored
/// metric stays finite (JSON cannot hold f64::INFINITY).
const RUN_SECS: f64 = 30.0;

fn run_cfg(window: usize) -> Preprocessed {
    let mut cfg = LustreConfig::default();
    cfg.writeback_window = window;
    cfg.commit_demand = SimDuration::from_millis(3); // slow journal disk
    let mut model = LustreFs::new(cfg);
    let mut sim = SimConfig::default();
    sim.duration = Some(SimDuration::from_secs(RUN_SECS as u64));
    let res = run_makefiles(&mut model, 1, 1, &sim);
    let rs = ResultSet::from_run("MakeFiles", 1, 1, &res);
    preprocess(&rs, &[])
}

fn phase(pre: &Preprocessed, from: f64, to: f64) -> f64 {
    let rows: Vec<_> = pre
        .intervals
        .iter()
        .filter(|r| r.timestamp > from && r.timestamp <= to)
        .collect();
    rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64
}

/// First instant where throughput falls below 60 % of the initial burst —
/// the end of the write-back burst. A window so small that the run starts
/// already throttled has no burst at all (length 0); a burst that outlasts
/// the run is reported as `RUN_SECS`.
fn burst_end(pre: &Preprocessed) -> f64 {
    let burst = phase(pre, 0.0, 0.5);
    let steady = phase(pre, 20.0, 30.0);
    if burst < steady * 1.2 {
        return 0.0; // never ran faster than the commit rate
    }
    pre.intervals
        .iter()
        .skip(5)
        .find(|r| r.throughput < burst * 0.6)
        .map(|r| r.timestamp)
        .unwrap_or(RUN_SECS)
}

pub fn run(b: &mut ReportBuilder) {
    let windows = [16usize, 256, 1_024, 8_192];
    let mut t = ExpTable::new(
        "Ablation — Lustre write-back window under a 3 ms/op commit pipeline",
        &[
            "window [ops]",
            "burst ends at [s]",
            "steady ops/s (20-30 s)",
        ],
    );
    let mut ends = Vec::new();
    let mut steadies = Vec::new();
    for &w in &windows {
        let pre = run_cfg(w);
        let end = burst_end(&pre);
        let steady = phase(&pre, 20.0, 30.0);
        ends.push(end);
        steadies.push(steady);
        t.row(vec![
            w.to_string(),
            if end < RUN_SECS {
                format!("{end:.1}")
            } else {
                "never".into()
            },
            fmt_ops(steady),
        ]);
    }
    b.table(t);

    b.metric_tol("burst_end_w16", ends[0], 1e-6);
    b.metric_tol("burst_end_w1024", ends[2], 1e-6);
    b.metric_tol("burst_end_w8192", ends[3], 1e-6);
    b.metric_tol("steady_w16", steadies[0], 1e-6);
    b.metric_tol("steady_w8192", steadies[3], 1e-6);

    b.check(
        "bigger_windows_sustain_burst_longer",
        ends[0] <= ends[1] && ends[1] < ends[2] && ends[2] < ends[3],
        format!("{ends:?}"),
    );
    let commit_rate = 1.0e6 / 3_000.0;
    let mut all_at_commit_rate = true;
    let mut detail = String::new();
    for (w, s) in windows.iter().zip(&steadies) {
        if (s - commit_rate).abs() / commit_rate >= 0.2 {
            all_at_commit_rate = false;
        }
        detail.push_str(&format!("w{w}:{s:.0} "));
    }
    b.check(
        "steady_state_is_commit_rate_regardless_of_window",
        all_at_commit_rate,
        format!("{detail}vs commit rate {commit_rate:.0}"),
    );
    b.summary(format!(
        "burst lasts {:.1} s (w=16) → {:.1} s (w=1024) → {:.1} s (w=8192) while every steady state sits at the {:.0} ops/s commit rate",
        ends[0], ends[2], ends[3], commit_rate
    ));
}
