//! TAB-3.1 — Weak/isogranular vs. strong scaling problem sizes
//! (paper §3.2.3, Table 3.1).
//!
//! Regenerates the table for the paper's initial problem size n = 6000 and
//! process counts 1–1000, demonstrating why DMetabench needs both scaling
//! modes (and why time-interval logging can recover strong-scaling numbers
//! from a weak-scaling run, §3.2.5).

use crate::suite::ReportBuilder;

pub fn run(b: &mut ReportBuilder) {
    b.note(crate::scaling::scaling_table_text(
        6000,
        &[1, 2, 3, 4, 5, 10, 100, 1000],
    ));
    b.note(
        "Paper check (Table 3.1): 2 processes → isogranular total 12000 / strong per-process 3000;"
            .to_owned(),
    );
    b.note(
        "                        1000 processes → isogranular total 6000000 / strong per-process 6."
            .to_owned(),
    );
    let rows = crate::scaling::scaling_table(6000, &[2, 1000]);
    b.metric_exact("iso_total_2_procs", rows[0].iso_total as f64);
    b.metric_exact("strong_per_proc_2_procs", rows[0].strong_per_process as f64);
    b.metric_exact("iso_total_1000_procs", rows[1].iso_total as f64);
    b.metric_exact(
        "strong_per_proc_1000_procs",
        rows[1].strong_per_process as f64,
    );
    b.check(
        "table_values_equal_paper",
        rows[0].iso_total == 12_000
            && rows[0].strong_per_process == 3_000
            && rows[1].iso_total == 6_000_000
            && rows[1].strong_per_process == 6,
        format!(
            "2 procs → {}/{}; 1000 procs → {}/{}",
            rows[0].iso_total,
            rows[0].strong_per_process,
            rows[1].iso_total,
            rows[1].strong_per_process
        ),
    );
    b.summary("identical values");
}
