//! EXP-4.7.3 — Measurements on AFS (paper §4.7.3).
//!
//! AFS aggregates its namespace externally: the client consults the VLDB
//! and talks to volume servers directly, but its single-threaded cache
//! manager serializes every RPC of the OS instance. Shapes to reproduce:
//!
//! * intra-node parallelism is flat (1 proc ≈ 8 procs on one node),
//! * inter-node parallelism scales — every node brings its own cache
//!   manager — until the volume servers saturate,
//! * spreading load over volumes on different file servers scales further
//!   than hammering one volume,
//! * callback caching makes repeated stats local (open-to-close semantics).

use crate::suite::{fmt_ops, fmt_x, make_workers, node_names, ExpTable, ReportBuilder};
use cluster::{run_sim, OpStream, SimConfig, WorkerSpec};
use dfs::{AfsFs, MetaOp};
use simcore::SimDuration;

fn streams_into(
    workers: &[WorkerSpec],
    volume_of_worker: impl Fn(usize) -> usize,
) -> Vec<Box<dyn OpStream>> {
    workers
        .iter()
        .enumerate()
        .map(|(k, w)| {
            let dir = format!("/vol{}/n{}p{}", volume_of_worker(k), w.node, w.proc);
            let s: Box<dyn OpStream> = Box::new(move |i: u64| {
                Some(MetaOp::Create {
                    path: format!("{dir}/f{i}"),
                    data_bytes: 0,
                })
            });
            s
        })
        .collect()
}

fn throughput(nodes: usize, ppn: usize, volume_of_worker: impl Fn(usize) -> usize) -> f64 {
    let mut model = AfsFs::with_defaults();
    let workers = make_workers(nodes, ppn);
    let streams = streams_into(&workers, volume_of_worker);
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(20));
    let res = run_sim(&mut model, &node_names(nodes), workers, streams, &cfg);
    res.stonewall_ops_per_sec()
}

pub fn run(b: &mut ReportBuilder) {
    // --- intra-node: flat ----------------------------------------------------
    let ppns = [1usize, 2, 4, 8];
    let mut t = ExpTable::new(
        "§4.7.3 — AFS single node, creates into one volume [ops/s]",
        &["processes", "ops/s", "vs 1 proc"],
    );
    let intra: Vec<f64> = ppns.iter().map(|&p| throughput(1, p, |_| 0)).collect();
    for (i, &p) in ppns.iter().enumerate() {
        t.row(vec![
            p.to_string(),
            fmt_ops(intra[i]),
            fmt_x(intra[i] / intra[0]),
        ]);
    }
    b.table(t);

    // --- inter-node: scales --------------------------------------------------
    let nodes_list = [1usize, 2, 4, 8];
    let mut t2 = ExpTable::new(
        "§4.7.3 — AFS multi-node, 1 ppn [ops/s]",
        &["nodes", "one volume", "volumes spread over servers"],
    );
    let mut one_vol = Vec::new();
    let mut spread_vol = Vec::new();
    for &n in &nodes_list {
        let one = throughput(n, 1, |_| 0);
        // default AFS layout: 8 volumes over 4 servers → pick per-worker
        let spread = throughput(n, 1, |k| k % 8);
        t2.row(vec![n.to_string(), fmt_ops(one), fmt_ops(spread)]);
        one_vol.push(one);
        spread_vol.push(spread);
    }
    b.table(t2);

    b.metric_tol("intra_1_proc", intra[0], 1e-6);
    b.metric_tol("intra_8_procs", intra[3], 1e-6);
    b.metric_tol("one_vol_8_nodes", one_vol[3], 1e-6);
    b.metric_tol("spread_vol_8_nodes", spread_vol[3], 1e-6);

    b.check(
        "cache_manager_serializes_node",
        intra[3] < intra[0] * 1.3,
        format!("{} → {}", intra[0], intra[3]),
    );
    b.check(
        "inter_node_scaling_works",
        one_vol[3] > one_vol[0] * 3.0,
        format!("{} → {}", one_vol[0], one_vol[3]),
    );
    b.check(
        "spreading_volumes_never_hurts",
        spread_vol[3] >= one_vol[3] * 0.95,
        format!("{} vs {}", spread_vol[3], one_vol[3]),
    );
    b.summary(format!(
        "1–8 procs on one node: {} ops/s flat ({:.2}×); 1→8 nodes: {} → {} (one volume) / {} (spread volumes)",
        fmt_ops(intra[0]),
        intra[3] / intra[0],
        fmt_ops(one_vol[0]),
        fmt_ops(one_vol[3]),
        fmt_ops(spread_vol[3])
    ));
}
