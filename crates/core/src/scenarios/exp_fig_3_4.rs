//! FIG-3.4 — The time-interval logging worked example (paper §3.2.5).
//!
//! Three processes perform 30 operations each; the figure's per-interval
//! totals are 19, 45, 70, 85, 90 cumulative (deltas 19, 26, 25, 15, 5).
//! The wall-clock average is 18 ops per time unit (90 ops / 5 units) and
//! the stonewall average is 23.3 ops per time unit (70 ops / 3 units,
//! because the first process finishes after 3 units).

use crate::suite::{ExpTable, ReportBuilder};
use crate::{preprocess, ProcessTrace, ResultSet};

pub fn run(b: &mut ReportBuilder) {
    // The figure's per-process cumulative logs (time unit = 1 s here).
    let traces = [
        (
            "P1",
            vec![(1.0, 5), (2.0, 13), (3.0, 18), (4.0, 25), (5.0, 30)],
        ),
        ("P2", vec![(1.0, 8), (2.0, 18), (3.0, 30)]),
        ("P3", vec![(1.0, 6), (2.0, 14), (3.0, 22), (4.0, 30)]),
    ];
    let rs = ResultSet {
        operation: "Fig3.4Example".into(),
        fs_name: "worked-example".into(),
        nodes: 1,
        ppn: 3,
        interval_s: 1.0,
        processes: traces
            .iter()
            .enumerate()
            .map(|(i, (_, s))| ProcessTrace {
                hostname: "node0".into(),
                process_no: i,
                samples: s.clone(),
                finished_at: Some(s.last().expect("non-empty trace").0),
                ops_done: s.last().expect("non-empty trace").1,
                errors: 0,
            })
            .collect(),
    };
    let pre = preprocess(&rs, &[]);

    let mut t = ExpTable::new(
        "Fig. 3.4 — time-interval logging example",
        &["t", "total completed", "delta (this interval)"],
    );
    let mut prev = 0;
    for row in &pre.intervals {
        t.row(vec![
            format!("{:.0}", row.timestamp),
            row.total_done.to_string(),
            (row.total_done - prev).to_string(),
        ]);
        prev = row.total_done;
    }
    b.table(t);

    b.note(format!(
        "\nwall-clock average : {:.1} ops/unit (paper: 18)",
        pre.wallclock_avg
    ));
    b.note(format!(
        "stonewall average  : {:.1} ops/unit (paper: 23.3)",
        pre.stonewall_avg
    ));

    let totals: Vec<u64> = pre.intervals.iter().map(|r| r.total_done).collect();
    for (i, &total) in totals.iter().enumerate() {
        b.metric_exact(&format!("cumulative_t{}", i + 1), total as f64);
    }
    b.metric_exact("wallclock_avg", pre.wallclock_avg);
    b.metric_exact("stonewall_avg", pre.stonewall_avg);

    b.check(
        "cumulative_totals_match_figure",
        totals == vec![19, 45, 70, 85, 90],
        format!("{totals:?} vs 19/45/70/85/90"),
    );
    b.check(
        "wallclock_avg_is_18",
        (pre.wallclock_avg - 18.0).abs() < 1e-9,
        format!("{}", pre.wallclock_avg),
    );
    b.check(
        "stonewall_avg_is_70_over_3",
        (pre.stonewall_avg - 70.0 / 3.0).abs() < 1e-9,
        format!("{}", pre.stonewall_avg),
    );
    b.summary("identical values");
}
