//! EXP-4.5 — Intra-node scalability on SMP systems (paper §4.5).
//!
//! File creation with 1–32 processes on a single (large-)SMP node,
//! comparing the local file system, NFS and CXFS. Shapes to reproduce from
//! the paper's small-SMP and HLRB 2 measurements (§4.5.2–4.5.3):
//!
//! * the local file system scales with processes until kernel-side
//!   parallelism runs out,
//! * NFS scales intra-node too — the client issues concurrent RPCs and the
//!   filer has parallel service slots,
//! * CXFS stays flat: the client's token manager serializes all metadata
//!   traffic of the OS instance, so 32 processes ≈ 1 process.

use crate::chart;
use crate::suite::{fmt_ops, fmt_x, makefiles_throughput, ExpTable, ReportBuilder};
use cluster::SimConfig;
use dfs::{CxfsFs, DistFs, LocalFs, NfsFs, PvfsFs};
use simcore::SimDuration;

fn sweep(factory: impl Fn() -> Box<dyn DistFs>, ppns: &[usize]) -> Vec<f64> {
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(1));
    cfg.node_cores = 64; // a large SMP partition
    ppns.iter()
        .map(|&p| makefiles_throughput(factory(), 1, p, &cfg))
        .collect()
}

pub fn run(b: &mut ReportBuilder) {
    let ppns = [1usize, 2, 4, 8, 16, 32];
    let local = sweep(|| Box::new(LocalFs::with_defaults()), &ppns);
    let nfs = sweep(|| Box::new(NfsFs::with_defaults()), &ppns);
    let cxfs = sweep(|| Box::new(CxfsFs::with_defaults()), &ppns);
    let pvfs = sweep(|| Box::new(PvfsFs::with_defaults()), &ppns);

    let mut t = ExpTable::new(
        "§4.5 — file creation on one SMP node [ops/s]",
        &["processes", "local fs", "NFS", "CXFS", "PVFS2"],
    );
    for (i, &p) in ppns.iter().enumerate() {
        t.row(vec![
            p.to_string(),
            fmt_ops(local[i]),
            fmt_ops(nfs[i]),
            fmt_ops(cxfs[i]),
            fmt_ops(pvfs[i]),
        ]);
    }
    b.table(t);

    let mut t2 = ExpTable::new(
        "§4.5 — intra-node speedup, 32 processes vs 1",
        &["file system", "speedup"],
    );
    t2.row(vec!["local fs".into(), fmt_x(local[5] / local[0])]);
    t2.row(vec!["NFS".into(), fmt_x(nfs[5] / nfs[0])]);
    t2.row(vec!["CXFS".into(), fmt_x(cxfs[5] / cxfs[0])]);
    t2.row(vec!["PVFS2".into(), fmt_x(pvfs[5] / pvfs[0])]);
    b.table(t2);

    let series = vec![
        chart::Series::new(
            "local",
            ppns.iter()
                .zip(&local)
                .map(|(&p, &y)| (p as f64, y))
                .collect(),
        ),
        chart::Series::new(
            "NFS",
            ppns.iter()
                .zip(&nfs)
                .map(|(&p, &y)| (p as f64, y))
                .collect(),
        ),
        chart::Series::new(
            "CXFS",
            ppns.iter()
                .zip(&cxfs)
                .map(|(&p, &y)| (p as f64, y))
                .collect(),
        ),
    ];
    b.note(chart::processes_chart(&series));
    b.artifact(
        "exp_4_5_smp.svg",
        chart::svg_chart(
            "Intra-node scalability on an SMP node",
            "processes",
            "ops/s",
            &series,
            720,
            480,
        ),
    );

    b.metric_tol("local_speedup_32_procs", local[5] / local[0], 1e-6);
    b.metric_tol("nfs_speedup_32_procs", nfs[5] / nfs[0], 1e-6);
    b.metric_tol("cxfs_speedup_32_procs", cxfs[5] / cxfs[0], 1e-6);
    b.metric_tol("pvfs_speedup_32_procs", pvfs[5] / pvfs[0], 1e-6);

    b.check(
        "local_fs_scales_intra_node",
        local[5] > local[0] * 2.5,
        format!("{} → {}", local[0], local[5]),
    );
    b.check(
        "nfs_scales_until_filer_saturates",
        nfs[3] > nfs[0] * 4.0,
        format!("{} → {}", nfs[0], nfs[3]),
    );
    b.check(
        "cxfs_token_manager_serializes_node",
        cxfs[5] < cxfs[0] * 1.3,
        format!("{} → {}", cxfs[0], cxfs[5]),
    );
    b.check(
        "nfs_beats_cxfs_on_big_smp",
        nfs[5] > cxfs[5] * 4.0,
        format!("{} vs {}", nfs[5], cxfs[5]),
    );
    b.check(
        "cache_free_pvfs_scales_intra_node",
        pvfs[5] > pvfs[0] * 4.0,
        format!("{} → {}", pvfs[0], pvfs[5]),
    );
    b.summary(format!(
        "32-proc/1-proc speedups: local {:.1}×, NFS {:.1}× (to filer saturation), CXFS {:.2}×",
        local[5] / local[0],
        nfs[5] / nfs[0],
        cxfs[5] / cxfs[0]
    ));
}
