//! FAULT — NFS under a degraded network, plus packet loss and a link outage.
//!
//! Extends the paper's network-sensitivity axis (§4.6) past healthy links:
//! a `degrade@..:Fx` window multiplies latency and divides bandwidth, so a
//! latency-bound MakeFiles run on NFS must slow monotonically with the
//! factor. A second leg drives the soft-mount recovery path: an RPC-loss
//! window plus a hard 1 s link outage provoke timeouts and exponential
//! backoff, which shows up as nonzero retry counters and fewer completed
//! operations than the clean run.

use crate::suite::{fmt_ops, run_makefiles, ExpTable, ReportBuilder};
use cluster::SimConfig;
use dfs::NfsFs;
use netsim::fault::FaultSpec;
use simcore::{SimDuration, SimTime};

const FACTORS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

fn cfg() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(20));
    cfg.node_cores = 1;
    cfg
}

fn run_leg(spec: Option<&FaultSpec>) -> (f64, u64) {
    let mut model = NfsFs::with_defaults();
    if let Some(spec) = spec {
        model.set_faults(spec.build());
    }
    let res = run_makefiles(&mut model, 4, 1, &cfg());
    (res.stonewall_ops_per_sec(), res.total_retries())
}

pub fn run(b: &mut ReportBuilder) {
    // Leg 1: whole-run degradation sweep.
    let mut sweep = Vec::new();
    for factor in FACTORS {
        let spec = (factor != 1.0)
            .then(|| FaultSpec::default().degrade(SimTime::ZERO, SimTime::from_secs(3600), factor));
        sweep.push(run_leg(spec.as_ref()));
    }

    // Leg 2: lossy window + hard outage exercising timeout/backoff recovery.
    let lossy_spec = FaultSpec::parse("loss@5s..8s:0.35,down@12s..13s,seed=7").expect("valid spec");
    let (lossy_tput, lossy_retries) = run_leg(Some(&lossy_spec));

    let mut t = ExpTable::new(
        "Network degradation — MakeFiles 4 nodes × 1 ppn on NFS, 20 s runs",
        &["fault", "ops/s", "retries"],
    );
    for (factor, &(tput, retries)) in FACTORS.iter().zip(&sweep) {
        let label = if *factor == 1.0 {
            "healthy".to_string()
        } else {
            format!("degrade ×{factor}")
        };
        t.row(vec![label, fmt_ops(tput), retries.to_string()]);
    }
    t.row(vec![
        "loss 35% @5–8 s + down @12–13 s".into(),
        fmt_ops(lossy_tput),
        lossy_retries.to_string(),
    ]);
    b.table(t);

    for (factor, &(tput, _)) in FACTORS.iter().zip(&sweep) {
        b.metric_tol(&format!("degrade_x{factor}_ops"), tput, 1e-6);
    }
    b.metric_tol("lossy_ops", lossy_tput, 1e-6);
    b.metric_exact("lossy_retries", lossy_retries as f64);

    let clean = sweep[0].0;
    let worst = sweep[FACTORS.len() - 1].0;
    b.check(
        "throughput_monotone_in_degradation",
        sweep.windows(2).all(|w| w[1].0 < w[0].0),
        format!(
            "ops/s by factor: {}",
            sweep
                .iter()
                .map(|&(t, _)| fmt_ops(t))
                .collect::<Vec<_>>()
                .join(" > ")
        ),
    );
    b.check(
        "x8_degradation_hurts",
        worst < clean * 0.8,
        format!("{} healthy vs {} at ×8", fmt_ops(clean), fmt_ops(worst)),
    );
    b.check(
        "degradation_alone_needs_no_retries",
        sweep.iter().all(|&(_, r)| r == 0),
        "slow links delay RPCs but never lose them".to_string(),
    );
    b.check(
        "loss_provokes_retries",
        lossy_retries >= 1,
        format!("{lossy_retries} timeout/backoff retries"),
    );
    b.check(
        "recovery_costs_throughput",
        lossy_tput < clean,
        format!("{} clean vs {} lossy", fmt_ops(clean), fmt_ops(lossy_tput)),
    );
    b.summary(format!(
        "ops/s {} → {} from ×1 to ×8 degradation; loss+outage leg retried {} times at {}",
        fmt_ops(clean),
        fmt_ops(worst),
        lossy_retries,
        fmt_ops(lossy_tput)
    ));
}
