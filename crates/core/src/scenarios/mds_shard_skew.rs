//! SHARD — hot-directory skew and online subtree rebalancing.
//!
//! Hash placement spreads uniform traffic, but a skewed workload — every
//! client hammering one subtree — lands on a single shard regardless of the
//! shard count (§2.4.2's large-directory pathology at cluster scale). The
//! VLDB-style subtree table can fix this *online*: a scheduled reshard
//! splits the hot directory's children over the idle shards while traffic
//! is live, clients discover the moves lazily through referral forwarding,
//! and throughput recovers. The shape to hold: pre-split throughput equals
//! one shard's capacity, post-split throughput is a multiple of it, and
//! each node pays the forwarding cost at most once per moved subtree.

use crate::suite::{fmt_ops, fmt_x, make_workers, node_names, ExpTable, ReportBuilder};
use crate::{preprocess, ResultSet};
use cluster::{run_sim, OpStream, SimConfig};
use dfs::{MetaOp, ReshardAction, ReshardEvent, ShardMds, ShardMdsConfig, ShardPlacement};
use simcore::{SimDuration, SimTime};

const NODES: usize = 4;
const PPN: usize = 4;
const SPLIT_AT_S: u64 = 4;

/// Every worker creates in one of four children of the hot directory.
fn hot_streams(workers: usize) -> Vec<Box<dyn OpStream>> {
    (0..workers)
        .map(|w| {
            let dir = format!("/hot/part{}", w % 4);
            Box::new(move |i: u64| {
                Some(MetaOp::Create {
                    path: format!("{dir}/w{w}f{i}"),
                    data_bytes: 0,
                })
            }) as Box<dyn OpStream>
        })
        .collect()
}

fn run_skewed(reshard: Vec<ReshardEvent>) -> (cluster::SimRunResult, u64) {
    let mut model = ShardMds::new(ShardMdsConfig {
        shards: 4,
        placement: ShardPlacement::Subtree,
        table: vec![("/".to_owned(), 0), ("/hot".to_owned(), 1)],
        reshard,
        allow_partition: false, // the report reads model counters below
        ..ShardMdsConfig::default()
    });
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(16));
    cfg.node_cores = 1;
    let workers = make_workers(NODES, PPN);
    let streams = hot_streams(workers.len());
    let res = run_sim(&mut model, &node_names(NODES), workers, streams, &cfg);
    (res, model.migrations())
}

pub fn run(b: &mut ReportBuilder) {
    // part0 stays on the hot shard; the other three children split away
    let split: Vec<ReshardEvent> = (1..4)
        .map(|p| ReshardEvent {
            at: SimTime::from_secs(SPLIT_AT_S),
            action: ReshardAction::Assign {
                prefix: format!("/hot/part{p}"),
                to: (p + 1) % 4, // shards 2, 3, 0
            },
        })
        .collect();

    let (static_res, static_migrations) = run_skewed(Vec::new());
    let (split_res, split_migrations) = run_skewed(split);

    let window = |res: &cluster::SimRunResult, from: f64, to: f64| -> f64 {
        let rs = ResultSet::from_run("MakeFiles", NODES, PPN, res);
        let pre = preprocess(&rs, &[]);
        let rows: Vec<_> = pre
            .intervals
            .iter()
            .filter(|r| r.timestamp > from && r.timestamp <= to)
            .collect();
        rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64
    };

    let static_rate = window(&static_res, 1.0, 16.0);
    let before = window(&split_res, 1.0, SPLIT_AT_S as f64);
    let after = window(&split_res, (SPLIT_AT_S + 4) as f64, 16.0);

    let mut t = ExpTable::new(
        "16 writers hammering /hot/part{0-3}, subtree placement on 4 shards",
        &["configuration", "ops/s", "vs hot shard"],
    );
    t.row(vec![
        "static table (whole run)".into(),
        fmt_ops(static_rate),
        fmt_x(1.0),
    ]);
    t.row(vec![
        format!("with split, before {SPLIT_AT_S} s"),
        fmt_ops(before),
        fmt_x(before / static_rate),
    ]);
    t.row(vec![
        format!("with split, after {} s", SPLIT_AT_S + 4),
        fmt_ops(after),
        fmt_x(after / static_rate),
    ]);
    b.table(t);

    b.metric_tol("static_ops", static_rate, 1e-6);
    b.metric_tol("presplit_ops", before, 1e-6);
    b.metric_tol("postsplit_ops", after, 1e-6);
    b.metric_exact("static_migrations", static_migrations as f64);
    b.metric_exact("split_migrations", split_migrations as f64);

    b.check(
        "static_table_never_migrates",
        static_migrations == 0,
        format!("{static_migrations} forwards without a schedule"),
    );
    b.check(
        "presplit_matches_static",
        (before - static_rate).abs() < static_rate * 0.1,
        format!("{} vs {} ops/s", fmt_ops(before), fmt_ops(static_rate)),
    );
    b.check(
        "split_relieves_the_hot_shard",
        after > static_rate * 2.0,
        format!(
            "{} → {} ops/s after the split",
            fmt_ops(static_rate),
            fmt_ops(after)
        ),
    );
    b.check(
        "forwarding_paid_once_per_node_per_move",
        split_migrations as usize <= NODES * 3 && split_migrations > 0,
        format!("{split_migrations} forwards, bound {}", NODES * 3),
    );
    b.summary(format!(
        "hot shard {} ops/s; online 3-way split lifts it to {} ({}), {} referral forwards",
        fmt_ops(static_rate),
        fmt_ops(after),
        fmt_x(after / static_rate),
        split_migrations
    ));
}
