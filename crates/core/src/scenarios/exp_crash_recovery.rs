//! CRASH — power-loss sweep: journal recovery + fsck across crash schedules.
//!
//! The paper's runs are all healthy; its metadata servers nonetheless stake
//! their performance on journaling (§2.6.3: ext3 ordered mode under the
//! Lustre MDS, WAFL's NVRAM-backed log). This scenario exercises the part
//! the paper never measures: *power loss mid-log*. A deterministic scripted
//! workload runs on an async-journal `MemFs` with explicit commit
//! boundaries; a seeded crash schedule (PR-4 fault-grammar style:
//! `crash-after:N-records`, `torn:last`, `reorder:K`) cuts power at a
//! record-count trigger and damages the simulated on-disk log tail. After
//! recovery the scenario asserts the durability contract — the recovered
//! tree is exactly the last committed tree, nothing uncommitted surfaces,
//! fsck is clean — then *keeps running* on the recovered image and crashes
//! it once more, pinning the crash-twice path end to end.

use crate::crashdrill::{apply_step, commit_all, harness_fs, observe_meta, COMMIT_EVERY};
use crate::suite::{ExpTable, ReportBuilder};
use memfs::crash::CrashSpec;
use simcore::{telemetry, SimTime};

const STEPS: u64 = 64;

/// The crash schedules under sweep: id, grammar spec.
const SCHEDULES: &[(&str, &str)] = &[
    ("clean_early", "crash-after:6-records,seed=11"),
    ("clean_late", "crash-after:52-records,seed=12"),
    ("torn", "crash-after:17-records,torn:last,seed=13"),
    ("reorder", "crash-after:29-records,reorder:3,seed=14"),
    (
        "torn_reorder",
        "crash-after:41-records,torn:last,reorder:2,seed=15",
    ),
];

struct ScheduleResult {
    replayed: usize,
    discarded: usize,
    volatile_at_crash: usize,
    prefix_durable: bool,
    fsck_clean: bool,
    final_paths: usize,
}

fn run_schedule(spec: &CrashSpec) -> ScheduleResult {
    let mut fs = harness_fs();
    let crash_after = spec.build().crash_after().expect("schedule has a trigger");
    let mut committed_obs = observe_meta(&mut fs);
    let mut crashed = false;
    let mut result = None;

    for i in 0..STEPS {
        apply_step(&mut fs, i);
        // The trigger outranks the step's commit: power cuts mid-window,
        // with the step's records still volatile.
        if !crashed && fs.journal_total_logged() >= crash_after {
            crashed = true;
            let volatile_at_crash = fs.journal_volatile_len();
            let mut plan = spec.build();
            let stats = fs.crash_with(&mut plan);
            let prefix_durable = observe_meta(&mut fs) == committed_obs;
            result = Some(ScheduleResult {
                replayed: stats.replayed,
                discarded: stats.discarded(),
                volatile_at_crash,
                prefix_durable,
                fsck_clean: fs.check().is_empty(),
                final_paths: 0,
            });
        } else if i % COMMIT_EVERY == COMMIT_EVERY - 1 {
            commit_all(&mut fs);
            committed_obs = observe_meta(&mut fs);
        }
    }
    let mut out = result.expect("workload logs enough records to trigger the crash");

    // Life after recovery: finish the workload, commit, cut power once
    // more (clean) — the crash-twice path.
    commit_all(&mut fs);
    let committed_obs = observe_meta(&mut fs);
    let mut plan = CrashSpec::default().build();
    fs.crash_with(&mut plan);
    out.prefix_durable &= observe_meta(&mut fs) == committed_obs;
    out.fsck_clean &= fs.check().is_empty();
    out.final_paths = committed_obs.len();
    out
}

pub fn run(b: &mut ReportBuilder) {
    let pid = telemetry::begin_run("exp_crash_recovery");
    let mut t = ExpTable::new(
        "Power-loss sweep — 64-step scripted workload, commit every 5 steps, crash + recover + re-crash per schedule",
        &["schedule", "replayed", "discarded", "prefix durable", "fsck"],
    );

    let mut clock_units = 0u64;
    let mut all_durable = true;
    let mut all_fsck = true;
    let mut all_accounted = true;
    let mut total_replayed = 0usize;

    for (idx, (id, spec_str)) in SCHEDULES.iter().enumerate() {
        let spec = CrashSpec::parse(spec_str).expect("valid schedule spec");
        let start = clock_units;
        let r = run_schedule(&spec);
        // Virtual clock: one recovery sweep costs its replayed+discarded
        // frames in scan work units (1 unit = 1 µs).
        clock_units += (r.replayed + r.discarded + 1) as u64;
        telemetry::span(
            pid,
            idx as u64,
            "crash.schedule",
            "crash",
            SimTime::from_micros(start),
            SimTime::from_micros(clock_units),
        );

        all_durable &= r.prefix_durable;
        all_fsck &= r.fsck_clean;
        all_accounted &= r.discarded == r.volatile_at_crash;
        total_replayed += r.replayed;

        t.row(vec![
            (*id).into(),
            r.replayed.to_string(),
            r.discarded.to_string(),
            if r.prefix_durable { "yes" } else { "NO" }.into(),
            if r.fsck_clean { "clean" } else { "DIRTY" }.into(),
        ]);
        b.metric_exact(&format!("{id}_replayed"), r.replayed as f64);
        b.metric_exact(&format!("{id}_discarded"), r.discarded as f64);
        b.metric_exact(&format!("{id}_final_paths"), r.final_paths as f64);
    }
    b.table(t);

    b.metric_exact("schedules", SCHEDULES.len() as f64);
    b.metric_exact("total_replayed", total_replayed as f64);

    b.check(
        "committed_prefix_durable_everywhere",
        all_durable,
        "every recovery (and re-crash) landed on exactly the last committed tree".into(),
    );
    b.check(
        "fsck_clean_after_every_recovery",
        all_fsck,
        "fsck found no problems on any recovered image".into(),
    );
    b.check(
        "every_inflight_record_accounted",
        all_accounted,
        "scanner discard buckets sum to the volatile record count at each crash".into(),
    );
    b.check(
        "recoveries_replayed_work",
        total_replayed > 0,
        format!("{total_replayed} committed records replayed across the sweep"),
    );
    b.summary(format!(
        "{} crash schedules (clean / torn / reordered tails): every recovery restored exactly the committed prefix, {} records replayed, fsck clean throughout, crash-twice included",
        SCHEDULES.len(),
        total_replayed
    ));
}
