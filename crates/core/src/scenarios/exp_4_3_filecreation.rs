//! EXP-4.3.2 — File creation: NFS vs. Lustre in a cluster (paper §4.3.2).
//!
//! MakeFiles (60 virtual seconds) across 1–20 nodes at 1 and 4 processes
//! per node. Shapes to reproduce from the paper's comparison:
//!
//! * the NVRAM-backed NFS filer wins at low client counts (cheap commits,
//!   lighter client stack),
//! * NFS saturates as the filer's service slots fill; adding processes per
//!   node keeps helping until then,
//! * Lustre's per-node modifying-RPC serialization makes extra processes
//!   per node useless (1 ppn ≈ 4 ppn), but it scales with *nodes* until the
//!   MDS saturates.

use crate::chart;
use crate::suite::{fmt_ops, makefiles_throughput, ExpTable, ReportBuilder};
use cluster::SimConfig;
use dfs::{DistFs, LustreFs, NfsFs};
use simcore::SimDuration;

fn sweep(factory: impl Fn() -> Box<dyn DistFs>, ppn: usize, nodes_list: &[usize]) -> Vec<f64> {
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(60));
    nodes_list
        .iter()
        .map(|&n| makefiles_throughput(factory(), n, ppn, &cfg))
        .collect()
}

pub fn run(b: &mut ReportBuilder) {
    let nodes_list = [1usize, 2, 4, 8, 12, 16, 20];
    let nfs1 = sweep(|| Box::new(NfsFs::with_defaults()), 1, &nodes_list);
    let nfs4 = sweep(|| Box::new(NfsFs::with_defaults()), 4, &nodes_list);
    let lus1 = sweep(|| Box::new(LustreFs::with_defaults()), 1, &nodes_list);
    let lus4 = sweep(|| Box::new(LustreFs::with_defaults()), 4, &nodes_list);

    let mut t = ExpTable::new(
        "§4.3.2 — MakeFiles creation throughput [ops/s], 60 s runs",
        &[
            "nodes",
            "NFS 1 ppn",
            "NFS 4 ppn",
            "Lustre 1 ppn",
            "Lustre 4 ppn",
        ],
    );
    for (i, &n) in nodes_list.iter().enumerate() {
        t.row(vec![
            n.to_string(),
            fmt_ops(nfs1[i]),
            fmt_ops(nfs4[i]),
            fmt_ops(lus1[i]),
            fmt_ops(lus4[i]),
        ]);
    }
    b.table(t);

    let series = vec![
        chart::Series::new(
            "NFS 1 ppn",
            nodes_list
                .iter()
                .zip(&nfs1)
                .map(|(&n, &y)| (n as f64, y))
                .collect(),
        ),
        chart::Series::new(
            "NFS 4 ppn",
            nodes_list
                .iter()
                .zip(&nfs4)
                .map(|(&n, &y)| (n as f64, y))
                .collect(),
        ),
        chart::Series::new(
            "Lustre 1 ppn",
            nodes_list
                .iter()
                .zip(&lus1)
                .map(|(&n, &y)| (n as f64, y))
                .collect(),
        ),
        chart::Series::new(
            "Lustre 4 ppn",
            nodes_list
                .iter()
                .zip(&lus4)
                .map(|(&n, &y)| (n as f64, y))
                .collect(),
        ),
    ];
    b.note(chart::nodes_chart(&series));
    b.artifact(
        "exp_4_3_filecreation.svg",
        chart::svg_chart(
            "File creation: NFS vs Lustre",
            "nodes",
            "ops/s",
            &series,
            720,
            480,
        ),
    );

    // saturation points / plateau ratios — the shape the paper argues from
    b.metric_tol("nfs1_1node", nfs1[0], 1e-6);
    b.metric_tol("lus1_1node", lus1[0], 1e-6);
    b.metric_tol("nfs4_20nodes", nfs4[6], 1e-6);
    b.metric_tol("lus1_20nodes", lus1[6], 1e-6);
    let lus_intra = lus4[2] / lus1[2];
    let nfs_sat = nfs4[6] / nfs4[3];
    b.metric_tol("lustre_intra_node_factor", lus_intra, 1e-6);
    b.metric_tol("nfs_saturation_factor_8_to_20_nodes", nfs_sat, 1e-6);

    b.check(
        "nfs_wins_single_client",
        nfs1[0] > lus1[0] * 1.5,
        format!("{} vs {}", nfs1[0], lus1[0]),
    );
    b.check(
        "ppn_helps_nfs_before_saturation",
        nfs4[1] > nfs1[1] * 2.0,
        format!("{} vs {}", nfs4[1], nfs1[1]),
    );
    b.check(
        "lustre_modify_lock_makes_ppn_useless",
        lus_intra < 1.3,
        format!("4 ppn / 1 ppn factor {lus_intra:.2}"),
    );
    b.check(
        "lustre_scales_across_nodes",
        lus1[6] > lus1[0] * 4.0,
        format!("{} → {}", lus1[0], lus1[6]),
    );
    b.check(
        "nfs_filer_saturates",
        nfs_sat < 1.4,
        format!("{nfs_sat:.2}x from 8→20 nodes at 4 ppn"),
    );
    b.summary(format!(
        "NFS: {} ops/s @1 node → saturates ≈{} from 8×4; Lustre: {} @1 → {} plateau; 4 ppn ≡ 1 ppn for Lustre ({:.2}×) while NFS gains {:.0}×",
        fmt_ops(nfs1[0]),
        fmt_ops(nfs4[6]),
        fmt_ops(lus1[0]),
        fmt_ops(lus1[6]),
        lus_intra,
        nfs4[1] / nfs1[1]
    ));
}
