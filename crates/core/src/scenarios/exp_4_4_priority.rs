//! EXP-4.4 — Priority scheduling and metadata performance (paper §4.4).
//!
//! Benchmark processes with different CPU scheduling priorities (`nice`
//! weights) compete on one node. Shapes to reproduce:
//!
//! * when the operation is CPU-cheap and network-bound (plain NFS
//!   metadata), priorities barely matter — the processes spend their time
//!   waiting on RPCs, not the CPU;
//! * when CPU is contended (a compute-loaded node, as on the LRZ serial
//!   pool), higher-priority processes complete metadata work measurably
//!   faster, and a CPU hog degrades a low-priority benchmark much more
//!   than a high-priority one.

use crate::suite::{fmt_ops, fmt_x, node_names, ExpTable, ReportBuilder};
use cluster::{run_sim, Disturbance, OpStream, SimConfig, WorkerSpec};
use dfs::{DistFs, MetaOp, NfsFs};
use simcore::SimTime;

fn fixed_create_streams(workers: &[WorkerSpec], count: u64) -> Vec<Box<dyn OpStream>> {
    workers
        .iter()
        .map(|w| {
            let dir = format!("/bench/n{}p{}", w.node, w.proc);
            let s: Box<dyn OpStream> = Box::new(move |i: u64| {
                if i < count {
                    Some(MetaOp::Create {
                        path: format!("{dir}/f{i}"),
                        data_bytes: 0,
                    })
                } else {
                    None
                }
            });
            s
        })
        .collect()
}

/// Run 4 workers with given weights on one single-core node; return each
/// worker's completion time in seconds.
fn run_with_weights(weights: [f64; 4], hog: bool) -> Vec<f64> {
    let mut model: Box<dyn DistFs> = Box::new(NfsFs::with_defaults());
    let workers: Vec<WorkerSpec> = weights
        .iter()
        .enumerate()
        .map(|(p, &w)| WorkerSpec {
            node: 0,
            proc: p,
            cpu_weight: w,
        })
        .collect();
    let streams = fixed_create_streams(&workers, 5_000);
    let mut cfg = SimConfig::default();
    cfg.node_cores = 1;
    if hog {
        cfg.disturbances.push(Disturbance::CpuHog {
            node: 0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(3_600),
            weight: 4.0,
        });
    }
    let res = run_sim(model.as_mut(), &node_names(1), workers, streams, &cfg);
    res.workers
        .iter()
        .map(|w| w.finished_at.expect("fixed run completes").as_secs_f64())
        .collect()
}

pub fn run(b: &mut ReportBuilder) {
    // equal priorities, idle node: everyone finishes together
    let equal = run_with_weights([1.0, 1.0, 1.0, 1.0], false);
    // nice spread on an idle node: network-bound, so little difference
    let spread_idle = run_with_weights([4.0, 1.0, 1.0, 0.25], false);
    // nice spread on a compute-loaded node: CPU becomes contended
    let spread_hog = run_with_weights([4.0, 1.0, 1.0, 0.25], true);

    let mut t = ExpTable::new(
        "§4.4 — 4 creating processes on one node, 5 000 creates each: completion time [s]",
        &[
            "scenario",
            "prio +4 (p0)",
            "normal (p1)",
            "normal (p2)",
            "nice -0.25 (p3)",
        ],
    );
    let fmt = |v: &[f64]| v.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>();
    let e = fmt(&equal);
    t.row(vec![
        "equal priorities, idle node".into(),
        e[0].clone(),
        e[1].clone(),
        e[2].clone(),
        e[3].clone(),
    ]);
    let s = fmt(&spread_idle);
    t.row(vec![
        "priority spread, idle node".into(),
        s[0].clone(),
        s[1].clone(),
        s[2].clone(),
        s[3].clone(),
    ]);
    let h = fmt(&spread_hog);
    t.row(vec![
        "priority spread, CPU-loaded node".into(),
        h[0].clone(),
        h[1].clone(),
        h[2].clone(),
        h[3].clone(),
    ]);
    b.table(t);

    let mut t2 = ExpTable::new(
        "§4.4 — effective throughput of the prioritized vs niced process",
        &["scenario", "high-prio ops/s", "low-prio ops/s", "ratio"],
    );
    for (label, v) in [("idle node", &spread_idle), ("loaded node", &spread_hog)] {
        t2.row(vec![
            label.into(),
            fmt_ops(5_000.0 / v[0]),
            fmt_ops(5_000.0 / v[3]),
            fmt_x(v[3] / v[0]),
        ]);
    }
    b.table(t2);

    let equal_spread = equal.iter().fold(0.0f64, |a, &b| a.max(b))
        / equal.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let idle_ratio = spread_idle[3] / spread_idle[0];
    let hog_ratio = spread_hog[3] / spread_hog[0];
    b.metric_tol("equal_priority_spread", equal_spread, 1e-6);
    b.metric_tol("idle_low_over_high_ratio", idle_ratio, 1e-6);
    b.metric_tol("hog_low_over_high_ratio", hog_ratio, 1e-6);
    b.metric_tol("hog_high_prio_completion_s", spread_hog[0], 1e-6);
    b.metric_tol("hog_low_prio_completion_s", spread_hog[3], 1e-6);

    b.check(
        "equal_priorities_finish_together",
        equal_spread < 1.05,
        format!("max/min completion {equal_spread:.3}"),
    );
    b.check(
        "network_bound_run_barely_priority_sensitive",
        idle_ratio < 1.6,
        format!("{idle_ratio:.2}"),
    );
    b.check(
        "cpu_contention_amplifies_priority",
        hog_ratio > idle_ratio * 1.2,
        format!("{idle_ratio:.2} → {hog_ratio:.2}"),
    );
    b.check(
        "prioritized_process_finishes_first_under_load",
        spread_hog[0] < spread_hog[3],
        format!("{:.2} s vs {:.2} s", spread_hog[0], spread_hog[3]),
    );
    b.summary(format!(
        "idle node: prio spread changes completion times by {:.2}×; CPU-loaded node: niced process takes {:.2}× the prioritized one's time ({:.2} s vs {:.2} s)",
        idle_ratio, hog_ratio, spread_hog[0], spread_hog[3]
    ));
}
