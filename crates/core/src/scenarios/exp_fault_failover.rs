//! FAULT — Lustre MDS crash + failover to a standby mid-run.
//!
//! Beyond the paper's healthy clusters: the active MDS crashes at t = 20 s.
//! Clients time out, reconnect to the standby and wait for journal replay
//! (`failover_detect` + `failover_replay` = 4.5 s); service then resumes on
//! the standby. The shape to hold: throughput collapses for exactly the
//! takeover window, recovers afterwards, and the failover is attributed to
//! exactly one operation while every stalled client accounts a retry.

use crate::suite::{fmt_ops, run_makefiles, ExpTable, ReportBuilder};
use crate::{chart, preprocess, ResultSet};
use cluster::SimConfig;
use dfs::LustreFs;
use netsim::fault::FaultSpec;
use simcore::SimDuration;

pub fn run(b: &mut ReportBuilder) {
    let mut model = LustreFs::with_defaults();
    model.set_faults(
        FaultSpec::parse("crash:0@20s+5s")
            .expect("valid spec")
            .build(),
    );
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(60));
    cfg.node_cores = 1;
    let res = run_makefiles(&mut model, 4, 1, &cfg);
    let retries = res.total_retries();
    let failovers = res.total_failovers();
    let rs = ResultSet::from_run("MakeFiles", 4, 1, &res);
    let pre = preprocess(&rs, &[]);

    let window = |from: f64, to: f64| -> f64 {
        let rows: Vec<_> = pre
            .intervals
            .iter()
            .filter(|r| r.timestamp > from && r.timestamp <= to)
            .collect();
        rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64
    };

    let mut t = ExpTable::new(
        "MDS failover — MakeFiles 4 nodes × 1 ppn on Lustre, crash at 20 s, standby takes over at 24.5 s",
        &["window", "ops/s"],
    );
    let windows = [
        ("healthy (2–20 s)", 2.0, 20.0),
        ("takeover (20–25 s)", 20.0, 25.0),
        ("standby serving (30–60 s)", 30.0, 60.0),
    ];
    for (label, from, to) in windows {
        t.row(vec![label.into(), fmt_ops(window(from, to))]);
    }
    b.table(t);
    b.note(chart::time_chart(&pre));
    b.artifact("fault_failover.svg", chart::svg_time_chart(&pre));

    let before = window(2.0, 20.0);
    let during = window(20.0, 25.0);
    let after = window(30.0, 60.0);
    b.metric_tol("healthy_ops", before, 1e-6);
    b.metric_tol("takeover_ops", during, 1e-6);
    b.metric_tol("standby_ops", after, 1e-6);
    b.metric_exact("rpc_retries", retries as f64);
    b.metric_exact("failovers", failovers as f64);

    b.check(
        "exactly_one_failover_event",
        failovers == 1,
        format!("{failovers} failovers attributed"),
    );
    b.check(
        "every_stalled_client_retries",
        retries >= 4,
        format!("{retries} retries across 4 clients"),
    );
    b.check(
        "takeover_stalls_service",
        during < before * 0.3,
        format!("{before} → {during} ops/s during takeover"),
    );
    b.check(
        "standby_restores_service",
        after > before * 0.7,
        format!("{before} → {after} ops/s on the standby"),
    );
    b.summary(format!(
        "ops/s {} → {} during the 4.5 s takeover, {} on the standby; {} retries, {} failover",
        fmt_ops(before),
        fmt_ops(during),
        fmt_ops(after),
        retries,
        failovers
    ));
}
