//! ABLATION — attribute-cache TTL (the `acregmin` knob behind NFS
//! close-to-open semantics, paper §2.6.1 / §5.2.1).
//!
//! A create+stat application workload (each file is created once and stated
//! four times, like a build system probing its outputs) under attribute
//! cache TTLs from 0 (no caching — PVFS-like) to 30 s. Expected shape:
//! throughput grows steeply from TTL 0 to a TTL that covers the re-stat
//! distance, then saturates — revalidation traffic is the cost of freshness
//! (§2.6.3 "Visibility of changes").

use crate::suite::{fmt_ops, fmt_x, node_names, ExpTable, ReportBuilder};
use cluster::{run_sim, OpStream, SimConfig, WorkerSpec};
use dfs::{MetaOp, NfsConfig, NfsFs};
use simcore::SimDuration;

fn throughput_with_ttl(ttl_ms: u64) -> f64 {
    let mut cfg = NfsConfig::default();
    cfg.attr_ttl = SimDuration::from_millis(ttl_ms);
    let mut model = NfsFs::new(cfg);
    let workers = vec![WorkerSpec::new(0, 0), WorkerSpec::new(0, 1)];
    let streams: Vec<Box<dyn OpStream>> = workers
        .iter()
        .map(|w| {
            let dir = format!("/bench/p{}", w.proc);
            let s: Box<dyn OpStream> = Box::new(move |i: u64| {
                let file = i / 5;
                if i.is_multiple_of(5) {
                    Some(MetaOp::Create {
                        path: format!("{dir}/f{file}"),
                        data_bytes: 0,
                    })
                } else {
                    Some(MetaOp::Stat {
                        path: format!("{dir}/f{file}"),
                    })
                }
            });
            s
        })
        .collect();
    let mut sim = SimConfig::default();
    sim.duration = Some(SimDuration::from_secs(20));
    let res = run_sim(&mut model, &node_names(1), workers, streams, &sim);
    res.stonewall_ops_per_sec()
}

pub fn run(b: &mut ReportBuilder) {
    let ttls_ms = [0u64, 10, 100, 1_000, 3_000, 30_000];
    let mut t = ExpTable::new(
        "Ablation — NFS attribute-cache TTL on a create+4×stat workload",
        &["attr TTL [ms]", "ops/s", "vs no cache"],
    );
    let mut rates = Vec::new();
    for &ttl in &ttls_ms {
        let r = throughput_with_ttl(ttl);
        rates.push(r);
        t.row(vec![ttl.to_string(), fmt_ops(r), fmt_x(r / rates[0])]);
    }
    b.table(t);

    let saturation = rates[5] / rates[4];
    b.metric_tol("no_cache_ops", rates[0], 1e-6);
    b.metric_tol("ttl_1s_ops", rates[3], 1e-6);
    b.metric_tol("ttl_30s_ops", rates[5], 1e-6);
    b.metric_tol("saturation_ratio_30s_over_3s", saturation, 1e-6);

    b.check(
        "1s_ttl_converts_most_stats_into_hits",
        rates[3] > rates[0] * 2.5,
        format!("{} vs {}", rates[3], rates[0]),
    );
    b.check(
        "beyond_restat_distance_ttl_stops_helping",
        saturation < 1.15,
        format!("{saturation:.2}"),
    );
    b.summary(format!(
        "TTL 0 → {} ops/s; 1 s TTL → {} ({:.2}×); flattens beyond the re-stat distance ({:.2}× from 3 s to 30 s)",
        fmt_ops(rates[0]),
        fmt_ops(rates[3]),
        rates[3] / rates[0],
        saturation
    ));
}
