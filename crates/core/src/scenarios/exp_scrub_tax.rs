//! SCRUB — online integrity-scrub throughput tax on a create-heavy load.
//!
//! Production filers background-scrub their metadata (WAFL's consistency
//! checking, Lustre's lfsck) while serving traffic; the paper's benchmarks
//! run with scrubbing invisible in the noise. This scenario makes the tax
//! explicit: a create-heavy workload runs on `MemFs` with an online
//! [`Scrubber`](memfs::Scrubber) interleaved at increasing intensities
//! (inodes scanned per workload op), on a virtual clock derived from the
//! work the data structures actually perform — directory probes, allocator
//! scans, journal records/commits for the workload; probe + 4 KiB-checksum
//! work units for the scrubber. The tax is the relative increase in total
//! work per completed create.

use crate::suite::{ExpTable, ReportBuilder};
use memfs::{MemFs, MemFsConfig, OpCost, OpenFlags, Scrubber, Vfs};
use simcore::{telemetry, SimTime};

const OPS: u64 = 480;

/// Scrub intensity sweep: inodes visited per workload op (0 = scrub off).
const INTENSITIES: &[u64] = &[0, 1, 4, 16];

/// Convert an [`OpCost`] into abstract work units on the same scale as
/// [`ScrubReport::work_units`](memfs::ScrubReport): one probe/scan/block
/// is one unit; a synchronous journal commit costs a flush (8 units).
fn units(c: OpCost) -> u64 {
    c.dir_probes
        + c.alloc_scans
        + c.blocks_allocated
        + c.blocks_freed
        + c.journal_records
        + 8 * c.journal_commits
}

struct IntensityResult {
    workload_units: u64,
    scrub_units: u64,
    sweeps: u64,
    errors: usize,
    fsck_clean: bool,
}

fn run_intensity(batch: u64) -> IntensityResult {
    let mut config = MemFsConfig::default();
    config.journal_mode = memfs::JournalMode::Async;
    let mut fs = MemFs::with_config(config);
    for d in 0..8 {
        fs.mkdir(&format!("/d{d}")).expect("mkdir");
    }
    fs.checkpoint();
    let _ = fs.take_cost();

    let mut scrub = Scrubber::new();
    let mut workload_units = 0u64;
    let mut scrub_units = 0u64;

    for i in 0..OPS {
        let path = format!("/d{}/f{i}", i % 8);
        let fd = fs.open(&path, OpenFlags::write_create()).expect("create");
        fs.write(fd, &vec![i as u8; 256 + (i as usize % 7) * 512])
            .expect("write");
        fs.close(fd).expect("close");
        if i % 16 == 15 {
            // A sprinkle of deletions keeps the inode table moving under
            // the scrub cursor.
            let _ = fs.unlink(&format!("/d{}/f{}", (i - 8) % 8, i - 8));
        }
        workload_units += units(fs.take_cost());

        if batch > 0 {
            let report = fs.scrub_step(&mut scrub, batch as usize);
            scrub_units += report.work_units;
            // The scrubber's directory probes are already counted in its
            // work units; drop them from the workload meter.
            let _ = fs.take_cost();
        }
    }

    IntensityResult {
        workload_units,
        scrub_units,
        sweeps: scrub.stats.sweeps_completed,
        errors: scrub.stats.errors.len(),
        fsck_clean: fs.check().is_empty(),
    }
}

pub fn run(b: &mut ReportBuilder) {
    let pid = telemetry::begin_run("exp_scrub_tax");
    let mut t = ExpTable::new(
        "Online scrub tax — 480 creates (8 dirs) with an interleaved checksum sweep",
        &[
            "scrub batch/op",
            "sweeps",
            "scrub units",
            "total units",
            "tax %",
        ],
    );

    let mut baseline_total = 0u64;
    let mut taxes = Vec::new();
    let mut sweeps = Vec::new();
    let mut all_clean = true;
    let mut total_errors = 0usize;
    let mut clock_units = 0u64;

    for (idx, &batch) in INTENSITIES.iter().enumerate() {
        let start = clock_units;
        let r = run_intensity(batch);
        let total = r.workload_units + r.scrub_units;
        clock_units += total;
        telemetry::span(
            pid,
            idx as u64,
            "scrub.intensity",
            "scrub",
            SimTime::from_micros(start),
            SimTime::from_micros(clock_units),
        );
        if batch == 0 {
            baseline_total = total;
        }
        let tax = (total as f64 - baseline_total as f64) / baseline_total as f64 * 100.0;
        taxes.push(tax);
        sweeps.push(r.sweeps);
        all_clean &= r.fsck_clean;
        total_errors += r.errors;

        t.row(vec![
            if batch == 0 {
                "off".into()
            } else {
                batch.to_string()
            },
            r.sweeps.to_string(),
            r.scrub_units.to_string(),
            total.to_string(),
            format!("{tax:.1}"),
        ]);
        b.metric_exact(&format!("scrub{batch}_units"), r.scrub_units as f64);
        b.metric_exact(&format!("scrub{batch}_total_units"), total as f64);
        b.metric_exact(&format!("scrub{batch}_sweeps"), r.sweeps as f64);
        b.metric_tol(&format!("scrub{batch}_tax_pct"), tax, 1e-9);
    }
    b.table(t);
    b.metric_exact("scrub_errors", total_errors as f64);

    b.check(
        "scrub_finds_no_errors_under_live_traffic",
        total_errors == 0,
        "every sweep over the mutating tree came back clean".into(),
    );
    b.check(
        "tax_monotone_in_intensity",
        taxes.windows(2).all(|w| w[0] <= w[1]),
        format!("tax % by intensity: {taxes:?}"),
    );
    b.check(
        "heavy_scrub_completes_sweeps",
        *sweeps.last().expect("nonempty sweep") >= 1,
        format!("sweeps by intensity: {sweeps:?}"),
    );
    b.check(
        "scrubbing_costs_something",
        *taxes.last().expect("nonempty sweep") > 0.0,
        format!(
            "heaviest intensity taxes throughput {:.1} %",
            taxes.last().unwrap()
        ),
    );
    b.check(
        "fsck_clean_everywhere",
        all_clean,
        "final fsck clean at every intensity".into(),
    );
    b.summary(format!(
        "scrub batches {INTENSITIES:?} per op: tax {:.1} % → {:.1} % of total work, {} sweeps at the heaviest setting, zero integrity errors",
        taxes[1],
        taxes.last().unwrap(),
        sweeps.last().unwrap()
    ));
}
