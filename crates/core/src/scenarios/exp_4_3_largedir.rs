//! EXP-4.3.3 — Sequential and parallel file creation in large directories
//! (paper §4.3.3).
//!
//! Creation throughput into one shared directory that already holds N
//! entries, for the three generations of server-side directory indexes the
//! thesis surveys (§2.4.2). Shapes to reproduce:
//!
//! * linear-list directories degrade roughly with N (the uniqueness check
//!   scans the whole entry list, §2.6.3),
//! * hashed and B-tree directories stay nearly flat to large N,
//! * parallel creation into one directory helps until the server
//!   serializes on the directory itself.

use crate::suite::{fmt_ops, fmt_x, make_workers, node_names, ExpTable, ReportBuilder};
use cluster::{run_sim, OpStream, SimConfig, WorkerSpec};
use dfs::{MetaOp, NfsConfig, NfsFs};
use memfs::{DirIndexKind, Vfs};

const MEASURE_OPS: u64 = 2_000;

/// Create an NFS model whose server uses the given directory index and
/// whose shared directory `/big` is pre-populated with `n` entries.
fn prepared_model(kind: DirIndexKind, n: u64) -> NfsFs {
    let mut cfg = NfsConfig::default();
    cfg.fs_config.dir_index = kind;
    let mut model = NfsFs::new(cfg);
    let fs = model.server_fs_mut();
    fs.mkdir("/big").expect("fresh fs");
    for i in 0..n {
        let fd = fs.create(&format!("/big/old{i}")).expect("unique");
        fs.close(fd).expect("open");
    }
    fs.take_cost(); // preparation work is not part of the measurement
    model
}

fn creation_rate(kind: DirIndexKind, n: u64, nodes: usize, ppn: usize) -> f64 {
    let mut model = prepared_model(kind, n);
    let workers: Vec<WorkerSpec> = make_workers(nodes, ppn);
    let quota = MEASURE_OPS / workers.len() as u64;
    let streams: Vec<Box<dyn OpStream>> = workers
        .iter()
        .map(|w| {
            let tag = format!("n{}p{}", w.node, w.proc);
            let s: Box<dyn OpStream> = Box::new(move |i: u64| {
                if i < quota {
                    Some(MetaOp::Create {
                        path: format!("/big/{tag}_new{i}"),
                        data_bytes: 0,
                    })
                } else {
                    None
                }
            });
            s
        })
        .collect();
    let res = run_sim(
        &mut model,
        &node_names(nodes),
        workers,
        streams,
        &SimConfig::default(),
    );
    res.stonewall_ops_per_sec()
}

pub fn run(b: &mut ReportBuilder) {
    // Linear directories are O(N) per lookup, so pre-population itself is
    // O(N²); cap their sizes, as any real benchmark would have to.
    let linear_sizes: [u64; 3] = [1_000, 10_000, 30_000];
    let indexed_sizes: [u64; 5] = [1_000, 10_000, 30_000, 100_000, 300_000];

    let mut t = ExpTable::new(
        "§4.3.3 — sequential creation into a directory of N entries [ops/s]",
        &["N entries", "linear list", "hashed (WAFL)", "B-tree (XFS)"],
    );
    let mut linear_rates = Vec::new();
    let mut hashed_rates = Vec::new();
    for &n in &indexed_sizes {
        let lin = if linear_sizes.contains(&n) {
            let r = creation_rate(DirIndexKind::Linear, n, 1, 1);
            linear_rates.push((n, r));
            fmt_ops(r)
        } else {
            "(too slow)".to_owned()
        };
        let hash = creation_rate(DirIndexKind::Hashed, n, 1, 1);
        hashed_rates.push((n, hash));
        let btree = creation_rate(DirIndexKind::BTree, n, 1, 1);
        t.row(vec![n.to_string(), lin, fmt_ops(hash), fmt_ops(btree)]);
    }
    b.table(t);

    let mut t2 = ExpTable::new(
        "§4.3.3 — parallel creation into ONE directory of 100 000 entries (hashed)",
        &["configuration", "ops/s", "speedup vs sequential"],
    );
    let seq = creation_rate(DirIndexKind::Hashed, 100_000, 1, 1);
    let par4 = creation_rate(DirIndexKind::Hashed, 100_000, 4, 1);
    let par8 = creation_rate(DirIndexKind::Hashed, 100_000, 4, 2);
    t2.row(vec!["1 node × 1 proc".into(), fmt_ops(seq), "1.00x".into()]);
    t2.row(vec![
        "4 nodes × 1 proc".into(),
        fmt_ops(par4),
        fmt_x(par4 / seq),
    ]);
    t2.row(vec![
        "4 nodes × 2 procs".into(),
        fmt_ops(par8),
        fmt_x(par8 / seq),
    ]);
    b.table(t2);

    let lin_small = linear_rates[0].1;
    let lin_big = linear_rates[2].1;
    let hash_small = hashed_rates[0].1;
    let hash_big = hashed_rates.last().map(|&(_, r)| r).expect("non-empty");
    b.metric_tol("linear_1k", lin_small, 1e-6);
    b.metric_tol("linear_30k", lin_big, 1e-6);
    b.metric_tol("hashed_1k", hash_small, 1e-6);
    b.metric_tol("hashed_300k", hash_big, 1e-6);
    b.metric_tol("parallel_speedup_4nodes", par4 / seq, 1e-6);

    b.check(
        "linear_directories_degrade",
        lin_big < lin_small * 0.5,
        format!("{lin_small} → {lin_big}"),
    );
    b.check(
        "hashed_directories_stay_flat",
        hash_big > hash_small * 0.8,
        format!("{hash_small} → {hash_big}"),
    );
    b.check(
        "parallel_creation_into_one_dir_scales",
        par4 > seq * 2.0,
        format!("{seq} → {par4} on 4 nodes"),
    );
    b.summary(format!(
        "linear list: {} → {} ops/s from 1 k→30 k entries (≈{:.0}× degradation); hashed/B-tree flat at ≈{} ops/s up to 300 k entries; parallel creation into one 100 k-entry dir scales {:.1}× on 4 nodes",
        fmt_ops(lin_small),
        fmt_ops(lin_big),
        lin_small / lin_big,
        fmt_ops(hash_big),
        par4 / seq
    ));
}
