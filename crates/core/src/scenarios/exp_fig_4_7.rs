//! FIG-4.7 — A competing sequential write stream (paper §4.2.3).
//!
//! MakeFiles from 20 nodes × 1 ppn while an external process twice writes a
//! large file to the same filer. The paper's finding: metadata throughput
//! decreases globally during each write, but — unlike the per-node CPU hog —
//! there is very little difference *between* nodes, so the COV stays low.
//! Distinguishing these two disturbance signatures is exactly what the
//! combined time chart is for.

use crate::suite::{fmt_ops, run_makefiles, ExpTable, ReportBuilder};
use crate::{chart, preprocess, ResultSet};
use cluster::{Disturbance, SimConfig};
use dfs::NfsFs;
use simcore::{SimDuration, SimTime};

pub fn run(b: &mut ReportBuilder) {
    let mut model = NfsFs::with_defaults();
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(60));
    cfg.node_cores = 1;
    // two large sequential writes: a stream of data requests occupying the
    // filer (write window 12–24 s and 36–48 s)
    for (start, end) in [(12.0, 24.0), (36.0, 48.0)] {
        cfg.disturbances.push(Disturbance::ServerLoad {
            server: 0,
            start: SimTime::from_secs_f64(start),
            end: SimTime::from_secs_f64(end),
            demand: SimDuration::from_millis(10), // a burst of large write chunks
            interval: SimDuration::from_millis(4),
        });
    }
    let res = run_makefiles(&mut model, 20, 1, &cfg);
    let rs = ResultSet::from_run("MakeFiles", 20, 1, &res);
    let pre = preprocess(&rs, &[]);

    let window = |from: f64, to: f64| -> (f64, f64) {
        let rows: Vec<_> = pre
            .intervals
            .iter()
            .filter(|r| r.timestamp > from && r.timestamp <= to)
            .collect();
        (
            rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64,
            rows.iter().map(|r| r.cov).sum::<f64>() / rows.len().max(1) as f64,
        )
    };

    let mut t = ExpTable::new(
        "Fig. 4.7 — MakeFiles 20 nodes × 1 ppn with two competing sequential writes",
        &["window", "ops/s", "mean COV"],
    );
    let spans = [
        ("quiet (4–12 s)", 4.0, 12.0),
        ("write #1 (12–24 s)", 12.0, 24.0),
        ("quiet (24–36 s)", 24.0, 36.0),
        ("write #2 (36–48 s)", 36.0, 48.0),
        ("quiet (48–60 s)", 48.0, 60.0),
    ];
    let mut quiet_tp = Vec::new();
    let mut busy_tp = Vec::new();
    let mut covs = Vec::new();
    for (label, from, to) in spans {
        let (tp, cov) = window(from, to);
        covs.push(cov);
        if label.starts_with("write") {
            busy_tp.push(tp);
        } else {
            quiet_tp.push(tp);
        }
        t.row(vec![label.into(), fmt_ops(tp), format!("{cov:.3}")]);
    }
    b.table(t);
    b.note(chart::time_chart(&pre));
    b.artifact("fig_4_7_seqwrite.svg", chart::svg_time_chart(&pre));

    let quiet = quiet_tp.iter().sum::<f64>() / quiet_tp.len() as f64;
    let busy = busy_tp.iter().sum::<f64>() / busy_tp.len() as f64;
    let max_cov = covs.iter().fold(0.0f64, |a, &b| a.max(b));
    b.metric_tol("quiet_ops", quiet, 1e-6);
    b.metric_tol("busy_ops", busy, 1e-6);
    b.metric_tol("max_window_cov", max_cov, 1e-6);

    b.check(
        "global_slowdown_during_writes",
        busy < quiet * 0.85,
        format!("{quiet} → {busy}"),
    );
    b.check(
        "cov_stays_low",
        max_cov < 0.35,
        format!("all nodes slow down together: max COV {max_cov:.3}"),
    );
    b.summary(format!(
        "{} → {} ops/s during each write window; COV stays ≤{:.2}",
        fmt_ops(quiet),
        fmt_ops(busy),
        max_cov
    ));
}
