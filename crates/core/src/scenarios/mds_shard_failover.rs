//! SHARD — one shard crashes; the ring successor absorbs its subtrees.
//!
//! The single-MDS failover study (`exp_fault_failover`) shows service
//! collapsing to zero for the takeover window. A sharded service degrades
//! instead of collapsing: when one of four shards crashes (netsim
//! `crash:S@T+D` grammar), only the directories it owns stall for the
//! detection timeout before rerouting to the next alive shard on the ring —
//! the other shards keep serving at full speed. The shape to hold:
//! throughput dips during the outage but stays well above zero, every
//! rerouted operation is attributed a failover, and service heals when the
//! crashed shard restarts.
//!
//! Each worker creates inside one fixed directory, so its shard assignment
//! is constant for the whole run and the healed window repeats the healthy
//! window's load pattern exactly. (The MakeFiles directory rotation would
//! let the outage desynchronize the workers' directory epochs; with every
//! shard running at saturation, the post-restart hash imbalance then
//! depresses throughput indefinitely — a real queueing effect, but not the
//! routing property under test here.)

use crate::suite::{fmt_ops, make_workers, node_names, ExpTable, ReportBuilder};
use crate::{chart, preprocess, ResultSet};
use cluster::{run_sim, OpStream, SimConfig};
use dfs::{MetaOp, ShardMds, ShardMdsConfig};
use netsim::fault::FaultSpec;
use simcore::SimDuration;

const NODES: usize = 8;
const PPN: usize = 2;

pub fn run(b: &mut ReportBuilder) {
    let mut model = ShardMds::new(ShardMdsConfig {
        shards: 4,
        ..ShardMdsConfig::default()
    });
    // shard 1 is engine server 2 (the placement service is server 0)
    model.set_faults(
        FaultSpec::parse("crash:2@10s+5s")
            .expect("valid spec")
            .build(),
    );
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(30));
    cfg.node_cores = 1;
    let workers = make_workers(NODES, PPN);
    // one fixed directory per worker: the 16 dirs hash 4/4/4/4 over the
    // shards, with workers 1, 5, 9 and 12 landing on the crashed shard
    let streams: Vec<Box<dyn OpStream>> = (0..workers.len())
        .map(|w| {
            Box::new(move |i: u64| {
                Some(MetaOp::Create {
                    path: format!("/bench/w{w:02}/f{i}"),
                    data_bytes: 0,
                })
            }) as Box<dyn OpStream>
        })
        .collect();
    let res = run_sim(&mut model, &node_names(NODES), workers, streams, &cfg);
    let failovers = res.total_failovers();
    let retries = res.total_retries();
    let rs = ResultSet::from_run("MakeFiles", NODES, PPN, &res);
    let pre = preprocess(&rs, &[]);

    let window = |from: f64, to: f64| -> f64 {
        let rows: Vec<_> = pre
            .intervals
            .iter()
            .filter(|r| r.timestamp > from && r.timestamp <= to)
            .collect();
        rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64
    };

    let before = window(2.0, 10.0);
    let during = window(10.0, 15.0);
    let after = window(20.0, 30.0);

    let mut t = ExpTable::new(
        "Shard crash — MakeFiles 8 nodes x 2 ppn on 4 hash shards, shard 1 down 10-15 s",
        &["window", "ops/s"],
    );
    t.row(vec!["healthy (2-10 s)".into(), fmt_ops(before)]);
    t.row(vec!["outage (10-15 s)".into(), fmt_ops(during)]);
    t.row(vec!["healed (20-30 s)".into(), fmt_ops(after)]);
    b.table(t);
    b.note(chart::time_chart(&pre));
    b.artifact("mds_shard_failover.svg", chart::svg_time_chart(&pre));

    b.metric_tol("healthy_ops", before, 1e-6);
    b.metric_tol("outage_ops", during, 1e-6);
    b.metric_tol("healed_ops", after, 1e-6);
    b.metric_exact("failovers", failovers as f64);
    b.metric_exact("rpc_retries", retries as f64);

    b.check(
        "outage_costs_throughput",
        during < before * 0.95,
        format!(
            "{} → {} ops/s during the outage",
            fmt_ops(before),
            fmt_ops(during)
        ),
    );
    b.check(
        "service_degrades_not_collapses",
        during > before * 0.3,
        format!(
            "{} of {} ops/s survives — unlike the single-MDS collapse",
            fmt_ops(during),
            fmt_ops(before)
        ),
    );
    b.check(
        "reroutes_are_attributed",
        failovers >= 1 && retries >= failovers,
        format!("{failovers} failovers, {retries} retries"),
    );
    b.check(
        "restart_heals_routing",
        after > before * 0.9,
        format!(
            "{} → {} ops/s after the restart",
            fmt_ops(before),
            fmt_ops(after)
        ),
    );
    b.summary(format!(
        "ops/s {} → {} with shard 1 down, {} healed; {} ops rerouted to the ring successor",
        fmt_ops(before),
        fmt_ops(during),
        fmt_ops(after),
        failovers
    ));
}
