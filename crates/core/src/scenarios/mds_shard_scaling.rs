//! SHARD — metadata throughput vs. MDS shard count.
//!
//! The paper's testbeds funnel every metadata operation through one server
//! (the NVRAM filer, the Lustre MDS) and §4.3 measures the resulting
//! saturation. This experiment asks the question the paper leaves open in
//! §2.5/§4.7: what happens when the namespace is hash-partitioned over N
//! metadata servers behind a placement layer? The shape to hold: throughput
//! grows monotonically from 1 → 4 → 16 shards, clearing the single-MDS
//! saturation ceiling, and flattens once shards approach the
//! distinct client directory count (64 writers).
//!
//! The hash-mode model is partition-conforming, so this sweep runs on the
//! conservative windowed engine — *pinned* via
//! [`SimConfig::pin_windowed_engine`], because at 64 saturated writers the
//! engines' same-instant tie-breaking differs and only the windowed engine
//! is bit-identical at every `--sim-threads` value. The report uses only
//! [`cluster::SimRunResult`]-derived data, so the blessed baseline holds
//! at any thread count (pinned by `tests/parsim_determinism.rs`).

use crate::suite::{fmt_ops, fmt_x, run_makefiles, ExpTable, ReportBuilder};
use cluster::SimConfig;
use dfs::{ShardMds, ShardMdsConfig};
use simcore::SimDuration;

const SHARD_COUNTS: [usize; 4] = [1, 4, 16, 64];
const NODES: usize = 16;
const PPN: usize = 4;

pub fn run(b: &mut ReportBuilder) {
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(10));
    cfg.node_cores = 1;
    cfg.pin_windowed_engine = true;

    let mut t = ExpTable::new(
        "MakeFiles 16 nodes x 4 ppn, hash placement over N MDS shards",
        &["shards", "ops/s", "vs 1 shard"],
    );
    let mut rates = Vec::new();
    for shards in SHARD_COUNTS {
        let mut model = ShardMds::new(ShardMdsConfig {
            shards,
            ..ShardMdsConfig::default()
        });
        let res = run_makefiles(&mut model, NODES, PPN, &cfg);
        let rate = res.stonewall_ops_per_sec();
        t.row(vec![
            shards.to_string(),
            fmt_ops(rate),
            fmt_x(rate / rates.first().copied().unwrap_or(rate)),
        ]);
        b.metric_tol(&format!("ops_{shards}_shards"), rate, 1e-6);
        rates.push(rate);
    }
    b.table(t);

    let (r1, r4, r16, r64) = (rates[0], rates[1], rates[2], rates[3]);
    b.check(
        "sharding_scales_1_to_4",
        r4 > r1 * 1.3,
        format!("{} → {} ops/s", fmt_ops(r1), fmt_ops(r4)),
    );
    b.check(
        "sharding_scales_4_to_16",
        r16 > r4 * 1.1,
        format!("{} → {} ops/s", fmt_ops(r4), fmt_ops(r16)),
    );
    b.check(
        "clears_single_mds_saturation",
        r16 > r1 * 2.0,
        format!("{} vs single-MDS {} ops/s", fmt_ops(r16), fmt_ops(r1)),
    );
    b.check(
        "flattens_past_directory_count",
        r64 > r16 * 0.9,
        format!(
            "{} → {} ops/s with only {} writer directories",
            fmt_ops(r16),
            fmt_ops(r64),
            NODES * PPN
        ),
    );
    b.summary(format!(
        "1/4/16/64 shards: {} / {} / {} / {} ops/s ({} past the single-MDS ceiling)",
        fmt_ops(r1),
        fmt_ops(r4),
        fmt_ops(r16),
        fmt_ops(r64),
        fmt_x(r16 / r1)
    ));
}
