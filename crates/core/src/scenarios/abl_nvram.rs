//! ABLATION — NVRAM on the file server (paper §2.6.4 / §3.1.4 footnote:
//! "Network Appliance sells NFS server appliances using a non-volatile
//! memory cache that reduces latency for NFS writes").
//!
//! NFSv3 requires metadata mutations to be persistent before the reply.
//! With NVRAM the commit is a memory write (cheap); without it every create
//! pays a disk-journal write inside its service time. Expected shape: the
//! no-NVRAM filer loses both per-op latency and saturation throughput, and
//! the gap grows with client count because the journal serializes.

use crate::suite::{fmt_ops, fmt_x, run_makefiles, ExpTable, ReportBuilder};
use cluster::SimConfig;
use dfs::{NfsConfig, NfsFs, ServiceCostModel};
use simcore::SimDuration;

fn filer(nvram: bool) -> NfsFs {
    let mut cfg = NfsConfig::default();
    if !nvram {
        cfg.cost = ServiceCostModel {
            // commit straight to the journal disk: ~1 ms extra per mutation
            base: cfg.cost.base + SimDuration::from_micros(1_000),
            ..cfg.cost
        };
        // and the on-disk journal admits fewer concurrent writers
        cfg.server_parallelism = 2;
    }
    NfsFs::new(cfg)
}

fn throughput(nvram: bool, nodes: usize) -> f64 {
    let mut model = filer(nvram);
    let mut sim = SimConfig::default();
    sim.duration = Some(SimDuration::from_secs(20));
    let res = run_makefiles(&mut model, nodes, 1, &sim);
    res.stonewall_ops_per_sec()
}

pub fn run(b: &mut ReportBuilder) {
    let nodes_list = [1usize, 4, 8, 16];
    let mut t = ExpTable::new(
        "Ablation — file creation with and without server NVRAM [ops/s]",
        &[
            "nodes",
            "NVRAM filer",
            "disk-journal filer",
            "NVRAM advantage",
        ],
    );
    let mut gaps = Vec::new();
    for &n in &nodes_list {
        let with = throughput(true, n);
        let without = throughput(false, n);
        gaps.push(with / without);
        t.row(vec![
            n.to_string(),
            fmt_ops(with),
            fmt_ops(without),
            fmt_x(with / without),
        ]);
    }
    b.table(t);

    b.metric_tol("gap_1_node", gaps[0], 1e-6);
    b.metric_tol("gap_16_nodes", gaps[3], 1e-6);

    b.check(
        "one_client_already_feels_the_journal",
        gaps[0] > 1.5,
        format!("{:.2}x", gaps[0]),
    );
    b.check(
        "gap_widens_as_clients_queue_on_journal",
        gaps[3] > gaps[0],
        format!("{:.2}x → {:.2}x", gaps[0], gaps[3]),
    );
    b.summary(format!(
        "NVRAM advantage grows from {:.2}× at 1 node to {:.2}× at 16 nodes",
        gaps[0], gaps[3]
    ));
}
