//! FIG-4.4 — Recognizing a CPU disturbance on one node (paper §4.2.3).
//!
//! MakeFiles from 4 nodes × 1 process to the NFS filer for 60 s. Run (a) is
//! clean; in run (b) a CPU-hog process storm occupies node 0 from t = 16 s
//! to t = 22 s. The paper's findings to reproduce: total throughput dips
//! visibly (≈5 500 → ≈4 000 ops/s on their filer), and the per-process COV
//! steps up for exactly the disturbance window.

use crate::suite::{fmt_ops, run_makefiles, ExpTable, ReportBuilder};
use crate::{chart, preprocess, Preprocessed, ResultSet};
use cluster::{Disturbance, SimConfig};
use dfs::NfsFs;
use simcore::{SimDuration, SimTime};

fn run_one(disturbed: bool) -> Preprocessed {
    let mut model = NfsFs::with_defaults();
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(60));
    cfg.node_cores = 1; // single benchmark slot per node, like the paper's serial pool
    if disturbed {
        cfg.disturbances.push(Disturbance::CpuHog {
            node: 0,
            start: SimTime::from_secs(16),
            end: SimTime::from_secs(22),
            weight: 8.0, // several dozen hogs share one core with the worker
        });
    }
    let res = run_makefiles(&mut model, 4, 1, &cfg);
    let rs = ResultSet::from_run("MakeFiles", 4, 1, &res);
    preprocess(&rs, &[])
}

fn window_avg(pre: &Preprocessed, from: f64, to: f64) -> (f64, f64) {
    let rows: Vec<_> = pre
        .intervals
        .iter()
        .filter(|r| r.timestamp > from && r.timestamp <= to)
        .collect();
    let tp = rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64;
    let cov = rows.iter().map(|r| r.cov).sum::<f64>() / rows.len().max(1) as f64;
    (tp, cov)
}

pub fn run(b: &mut ReportBuilder) {
    let clean = run_one(false);
    let disturbed = run_one(true);

    let mut t = ExpTable::new(
        "Fig. 4.4 — MakeFiles 4 nodes × 1 ppn on NFS, CPU hog on one node 16–22 s",
        &["window", "clean ops/s", "clean COV", "hog ops/s", "hog COV"],
    );
    for (label, from, to) in [
        ("before (6–16 s)", 6.0, 16.0),
        ("during (16–22 s)", 16.0, 22.0),
        ("after (22–32 s)", 22.0, 32.0),
    ] {
        let (ctp, ccov) = window_avg(&clean, from, to);
        let (dtp, dcov) = window_avg(&disturbed, from, to);
        t.row(vec![
            label.into(),
            fmt_ops(ctp),
            format!("{ccov:.3}"),
            fmt_ops(dtp),
            format!("{dcov:.3}"),
        ]);
    }
    b.table(t);

    b.note(chart::time_chart(&disturbed));
    b.artifact("fig_4_4_clean.svg", chart::svg_time_chart(&clean));
    b.artifact("fig_4_4_disturbed.svg", chart::svg_time_chart(&disturbed));

    let (before_tp, before_cov) = window_avg(&disturbed, 6.0, 16.0);
    let (during_tp, during_cov) = window_avg(&disturbed, 16.0, 22.0);
    let (after_tp, after_cov) = window_avg(&disturbed, 22.0, 32.0);
    b.metric_tol("hog_before_ops", before_tp, 1e-6);
    b.metric_tol("hog_during_ops", during_tp, 1e-6);
    b.metric_tol("hog_after_ops", after_tp, 1e-6);
    b.metric_tol("hog_before_cov", before_cov, 1e-6);
    b.metric_tol("hog_during_cov", during_cov, 1e-6);
    b.metric_tol("hog_after_cov", after_cov, 1e-6);

    b.check(
        "throughput_dips_during_hog",
        during_tp < before_tp * 0.95,
        format!("{before_tp} → {during_tp}"),
    );
    b.check(
        "cov_steps_up_for_exact_window",
        during_cov > before_cov * 3.0 && during_cov > after_cov * 3.0,
        format!("{before_cov} / {during_cov} / {after_cov}"),
    );
    b.check(
        "throughput_recovers_after_hog",
        after_tp > during_tp,
        format!("{during_tp} → {after_tp}"),
    );
    b.summary(format!(
        "{} → {} ops/s; COV {:.3} → {:.3} → {:.3}, confined to 16–22 s",
        fmt_ops(before_tp),
        fmt_ops(during_tp),
        before_cov,
        during_cov,
        after_cov
    ));
}
