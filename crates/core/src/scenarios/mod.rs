//! The experiment scenarios: one module per paper artifact.
//!
//! Each module ports the body of the corresponding `bench` binary into a
//! pure `fn(&mut ReportBuilder)` that records tables, metrics (with
//! baseline tolerances), shape checks (the former `assert!`s) and chart
//! artifacts. The binaries in `crates/bench/src/bin/` are thin wrappers
//! calling [`crate::suite::run_scenario_main`] with the scenario id.

use crate::suite::Scenario;

mod abl_attr_cache;
mod abl_nvram;
mod abl_wb_window;
mod exp_4_3_alloc;
mod exp_4_3_filecreation;
mod exp_4_3_largedir;
mod exp_4_4_priority;
mod exp_4_5_smp;
mod exp_4_6_latency;
mod exp_4_7_afs;
mod exp_4_7_ontapgx;
mod exp_4_8_writeback;
mod exp_crash_recovery;
mod exp_fault_afs_restart;
mod exp_fault_degrade;
mod exp_fault_failover;
mod exp_fig_3_4;
mod exp_fig_4_4;
mod exp_fig_4_5;
mod exp_fig_4_6;
mod exp_fig_4_7;
mod exp_lst_3_3;
mod exp_scrub_tax;
mod exp_tab_3_1;
mod exp_tab_4_2;
mod mds_shard_failover;
mod mds_shard_migration;
mod mds_shard_scaling;
mod mds_shard_skew;

const G_CH3: &str = "Chapter 3 artifacts (framework correctness)";
const G_DIST: &str = "Chapter 4 disturbance studies (Figs. 4.4–4.7)";
const G_43: &str = "§4.3 — NFS vs Lustre in a cluster";
const G_44: &str = "§4.4 — priority scheduling";
const G_45: &str = "§4.5 — intra-node SMP scalability";
const G_46: &str = "§4.6 — network latency";
const G_47: &str = "§4.7 — namespace aggregation";
const G_48: &str = "§4.8 — metadata write-back caching";
const G_ABL: &str = "Design-choice ablations (beyond the paper's figures)";
const G_FAULT: &str = "Fault injection & failure recovery (beyond the paper's healthy runs)";
const G_CRASH: &str = "Crash consistency & online integrity (beyond the paper's healthy runs)";
const G_SHARD: &str = "Sharded multi-MDS metadata service (beyond the paper's single-MDS testbeds)";

static REGISTRY: [Scenario; 29] = [
    Scenario {
        id: "exp_tab_3_1",
        title: "Table 3.1 — weak vs strong scaling sizes",
        group: G_CH3,
        paper_ref: "§3.2.3",
        paper: "n=6000: 2 procs → 12 000 iso-total / 3 000 strong-per-proc; 1000 procs → 6 000 000 / 6",
        verdict: "**exact match** (checked)",
        deterministic: true,
        cost_hint: 1,
        run: exp_tab_3_1::run,
    },
    Scenario {
        id: "exp_fig_3_4",
        title: "Fig. 3.4 — time-interval logging example",
        group: G_CH3,
        paper_ref: "§3.2.5",
        paper: "cumulative 19/45/70/85/90; wall-clock 18 ops/unit; stonewall 23.3",
        verdict: "**exact match** (checked)",
        deterministic: true,
        cost_hint: 1,
        run: exp_fig_3_4::run,
    },
    Scenario {
        id: "exp_lst_3_3",
        title: "Listings 3.3–3.5 — result pipeline",
        group: G_CH3,
        paper_ref: "§3.3.9",
        paper: "StatNocacheFiles, 2 nodes × 2 ppn, 4×5 000 ops; stonewall 22 191 ops/s on the production filer",
        verdict: "**format exact**; magnitude same order (paper arithmetic reproduced bit-exact in `preprocess.rs` unit tests)",
        deterministic: true,
        cost_hint: 10,
        run: exp_lst_3_3::run,
    },
    Scenario {
        id: "exp_tab_4_2",
        title: "Table 4.2 — harness overhead",
        group: G_CH3,
        paper_ref: "§4.2.2",
        paper: "Python 2.1 s vs C 0.62 s for 200 000 creates on /dev/shm (3.4×), constant per-op",
        verdict: "**shape holds** — fixed per-op overhead, vanishing against distributed FS latencies",
        deterministic: false,
        cost_hint: 20,
        run: exp_tab_4_2::run,
    },
    Scenario {
        id: "exp_fig_4_4",
        title: "Fig. 4.4 — CPU hog on one of 4 nodes, 16–22 s",
        group: G_DIST,
        paper_ref: "§4.2.3",
        paper: "throughput dips ≈5 500 → ≈4 000 ops/s; COV steps up for exactly the window",
        verdict: "**shape holds** (dip + clean COV step; checked)",
        deterministic: true,
        cost_hint: 40,
        run: exp_fig_4_4::run,
    },
    Scenario {
        id: "exp_fig_4_5",
        title: "Fig. 4.5 — filer snapshots from t≈9 s",
        group: G_DIST,
        paper_ref: "§4.2.3",
        paper: "COV rises \"in a much more random manner\"",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 20,
        run: exp_fig_4_5::run,
    },
    Scenario {
        id: "exp_fig_4_6",
        title: "Fig. 4.6 — 20 nodes saturate the filer; WAFL consistency points",
        group: G_DIST,
        paper_ref: "§4.2.3",
        paper: "sawtooth with ≈10 s period; a per-node hog is invisible in totals but visible in COV",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 120,
        run: exp_fig_4_6::run,
    },
    Scenario {
        id: "exp_fig_4_7",
        title: "Fig. 4.7 — two large sequential writes to the filer",
        group: G_DIST,
        paper_ref: "§4.2.3",
        paper: "global slowdown, \"very little difference between nodes\" (low COV)",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 60,
        run: exp_fig_4_7::run,
    },
    Scenario {
        id: "exp_4_3_filecreation",
        title: "§4.3.2 file creation scaling",
        group: G_43,
        paper_ref: "§4.3.2",
        paper: "NVRAM filer fast per client and saturating with enough clients; Lustre slower per op, per-node modify serialization (ppn doesn't help), scales with nodes to the MDS limit",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 400,
        run: exp_4_3_filecreation::run,
    },
    Scenario {
        id: "exp_4_3_largedir",
        title: "§4.3.3 large directories",
        group: G_43,
        paper_ref: "§4.3.3",
        paper: "directory structure determines create cost in big directories (§2.4.2: linear O(n) vs hash/B-tree)",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 200,
        run: exp_4_3_largedir::run,
    },
    Scenario {
        id: "exp_4_3_alloc",
        title: "§4.3.4 allocation probe (MakeFiles64byte/65byte)",
        group: G_43,
        paper_ref: "§4.3.4",
        paper: "64 B fits inline in the WAFL inode, 65 B forces block allocation — observable from the client",
        verdict: "**shape holds, boundary exact** (checked)",
        deterministic: true,
        cost_hint: 40,
        run: exp_4_3_alloc::run,
    },
    Scenario {
        id: "exp_4_4_priority",
        title: "§4.4 priority scheduling",
        group: G_44,
        paper_ref: "§4.4",
        paper: "CPU priorities matter for metadata throughput only when the client CPU is contended",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 20,
        run: exp_4_4_priority::run,
    },
    Scenario {
        id: "exp_4_5_smp",
        title: "§4.5.2–4.5.3 intra-node SMP scalability",
        group: G_45,
        paper_ref: "§4.5",
        paper: "on the 512-core HLRB 2, CXFS metadata barely scales with processes (client token serialization) while NFS does",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 20,
        run: exp_4_5_smp::run,
    },
    Scenario {
        id: "exp_4_6_latency",
        title: "§4.6 network latency sweep",
        group: G_46,
        paper_ref: "§4.6",
        paper: "synchronous metadata RPCs degrade with RTT; caching and parallelism are the mitigations (§5.2.1)",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 120,
        run: exp_4_6_latency::run,
    },
    Scenario {
        id: "exp_4_7_ontapgx",
        title: "§4.7.1–4.7.2 Ontap GX namespace aggregation",
        group: G_47,
        paper_ref: "§4.7.1–4.7.2",
        paper: "one volume bottlenecks on its owning D-blade; per-process path lists over all volumes scale; ~75 % efficiency for forwarded requests ([ECK+07])",
        verdict: "**shape holds, efficiency matches the cited figure** (checked 60–95 %)",
        deterministic: true,
        cost_hint: 200,
        run: exp_4_7_ontapgx::run,
    },
    Scenario {
        id: "exp_4_7_afs",
        title: "§4.7.3 AFS",
        group: G_47,
        paper_ref: "§4.7.3",
        paper: "cache-manager serialization makes intra-node flat; inter-node scales",
        verdict: "**shape holds** (checked)",
        deterministic: true,
        cost_hint: 60,
        run: exp_4_7_afs::run,
    },
    Scenario {
        id: "exp_4_8_writeback",
        title: "§4.8 metadata write-back caching",
        group: G_48,
        paper_ref: "§4.8",
        paper: "Lustre clients hold uncommitted operations until the MDS commits; time charts show burst-then-throttle",
        verdict: "**shape holds, plateau = commit rate** (checked)",
        deterministic: true,
        cost_hint: 20,
        run: exp_4_8_writeback::run,
    },
    Scenario {
        id: "abl_attr_cache",
        title: "Attribute-cache TTL",
        group: G_ABL,
        paper_ref: "§2.6.1/§5.2.1",
        paper: "caching pays until the TTL covers the re-access distance, then flattens",
        verdict: "**holds** (checked)",
        deterministic: true,
        cost_hint: 40,
        run: abl_attr_cache::run,
    },
    Scenario {
        id: "abl_nvram",
        title: "Server NVRAM",
        group: G_ABL,
        paper_ref: "§2.6.4",
        paper: "NVRAM is what makes synchronous NFS metadata fast (§2.6.4)",
        verdict: "**holds** (checked)",
        deterministic: true,
        cost_hint: 60,
        run: abl_nvram::run,
    },
    Scenario {
        id: "abl_wb_window",
        title: "Write-back window",
        group: G_ABL,
        paper_ref: "§4.8",
        paper: "the window buys burst length, never steady-state throughput (§4.8)",
        verdict: "**holds** (checked)",
        deterministic: true,
        cost_hint: 20,
        run: abl_wb_window::run,
    },
    Scenario {
        id: "exp_fault_failover",
        title: "Lustre MDS crash + standby failover",
        group: G_FAULT,
        paper_ref: "§4.1.2",
        paper: "the paper's Lustre testbeds pair the MDS with a failover standby; the healthy runs never exercise it",
        verdict: "**recovery shape holds** — service collapses for exactly the takeover window, standby restores it (checked)",
        deterministic: true,
        cost_hint: 60,
        run: exp_fault_failover::run,
    },
    Scenario {
        id: "exp_fault_degrade",
        title: "NFS on a degraded / lossy network",
        group: G_FAULT,
        paper_ref: "§4.6",
        paper: "synchronous RPCs track the link: ×F latency degradation must cost throughput monotonically; loss triggers soft-mount timeout/backoff",
        verdict: "**monotone + recovery shape holds** (checked)",
        deterministic: true,
        cost_hint: 120,
        run: exp_fault_degrade::run,
    },
    Scenario {
        id: "exp_fault_afs_restart",
        title: "AFS file-server restart → callback-break storm",
        group: G_FAULT,
        paper_ref: "§2.6.1/§4.7.3",
        paper: "AFS callbacks are server state; a restarted server has lost them all, so every client re-validates at once",
        verdict: "**storm + recovery shape holds** (checked)",
        deterministic: true,
        cost_hint: 40,
        run: exp_fault_afs_restart::run,
    },
    Scenario {
        id: "exp_crash_recovery",
        title: "Power-loss injection: journal recovery + fsck sweep",
        group: G_CRASH,
        paper_ref: "§2.6.3",
        paper: "the metadata servers the paper benchmarks all journal (ext3 ordered mode under the Lustre MDS, WAFL's NVRAM log); the runs never cut power mid-log",
        verdict: "**durability contract holds** — every crash schedule (clean / torn / reordered tail) recovers exactly the committed prefix, fsck clean, crash-twice included (checked)",
        deterministic: true,
        cost_hint: 10,
        run: exp_crash_recovery::run,
    },
    Scenario {
        id: "exp_scrub_tax",
        title: "Online integrity scrub: throughput tax sweep",
        group: G_CRASH,
        paper_ref: "§2.6.3",
        paper: "production filers background-scrub metadata while serving traffic; the paper's benchmarks run with scrubbing invisible in the noise",
        verdict: "**tax is monotone and bounded** — heavier sweeps cost proportionally more work units, zero integrity errors under live mutation (checked)",
        deterministic: true,
        cost_hint: 10,
        run: exp_scrub_tax::run,
    },
    Scenario {
        id: "mds_shard_scaling",
        title: "Shard-count scaling sweep (1/4/16/64 MDS shards)",
        group: G_SHARD,
        paper_ref: "§2.5/§4.7",
        paper: "the paper's metadata servers saturate alone (§4.3); §2.5/§4.7 point at namespace partitioning over several servers as the scaling path",
        verdict: "**scaling shape holds** — monotone 1→4→16 past the single-MDS ceiling, flat once shards outnumber writer directories (checked)",
        deterministic: true,
        cost_hint: 200,
        run: mds_shard_scaling::run,
    },
    Scenario {
        id: "mds_shard_skew",
        title: "Hot-directory skew + online subtree rebalancing",
        group: G_SHARD,
        paper_ref: "§2.4.2/§4.7",
        paper: "skewed traffic defeats hashing (one hot subtree = one hot shard); a VLDB-style subtree split relieves it without stopping traffic",
        verdict: "**rebalancing shape holds** — post-split throughput a multiple of the hot shard's, forwarding paid once per node per move (checked)",
        deterministic: true,
        cost_hint: 120,
        run: mds_shard_skew::run,
    },
    Scenario {
        id: "mds_shard_migration",
        title: "Lazy-migration conservation audit",
        group: G_SHARD,
        paper_ref: "§2.5/§4.7.3",
        paper: "AFS volume moves (§4.7.3) keep the namespace consistent mid-migration; every lookup must resolve to exactly one authority",
        verdict: "**conservation holds** — lookups == ops issued == ops completed across a split/migrate/merge schedule, zero errors (checked)",
        deterministic: true,
        cost_hint: 20,
        run: mds_shard_migration::run,
    },
    Scenario {
        id: "mds_shard_failover",
        title: "Shard crash → ring-successor failover",
        group: G_SHARD,
        paper_ref: "§4.1.2",
        paper: "the paper's single-MDS failover collapses service for the takeover window; a sharded service should only degrade by the crashed shard's share",
        verdict: "**degrade-not-collapse shape holds** — outage costs throughput but keeps the majority serving, restart heals (checked)",
        deterministic: true,
        cost_hint: 120,
        run: mds_shard_failover::run,
    },
];

/// The full scenario registry, in EXPERIMENTS.md display order.
pub fn registry() -> &'static [Scenario] {
    &REGISTRY
}
