//! EXP-4.8 — Write-back caching of metadata (paper §4.8).
//!
//! Lustre keeps a copy of every uncommitted metadata operation in the
//! client cache until the MDS has committed it to disk (paper §2.6.4,
//! §4.8). While the commit pipeline keeps up, creates run at RPC speed;
//! once the client's uncommitted-operation window fills, each new operation
//! must wait for a commit slot — the time chart shows a fast burst followed
//! by a commit-bound plateau. Disabling write-back tracking removes the
//! plateau (and the persistence guarantee).

use crate::chart;
use crate::suite::{fmt_ops, run_makefiles, ExpTable, ReportBuilder};
use crate::{preprocess, Preprocessed, ResultSet};
use cluster::SimConfig;
use dfs::{DistFs, LustreConfig, LustreFs};
use simcore::SimDuration;

fn run_cfg(window: usize, commit_us: u64) -> Preprocessed {
    let mut cfg = LustreConfig::default();
    cfg.writeback_window = window;
    cfg.commit_demand = SimDuration::from_micros(commit_us);
    let mut model: Box<dyn DistFs> = Box::new(LustreFs::new(cfg));
    let mut sim = SimConfig::default();
    sim.duration = Some(SimDuration::from_secs(30));
    let res = run_makefiles(model.as_mut(), 1, 1, &sim);
    let rs = ResultSet::from_run("MakeFiles", 1, 1, &res);
    preprocess(&rs, &[])
}

fn phase_throughput(pre: &Preprocessed, from: f64, to: f64) -> f64 {
    let rows: Vec<_> = pre
        .intervals
        .iter()
        .filter(|r| r.timestamp > from && r.timestamp <= to)
        .collect();
    rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64
}

pub fn run(b: &mut ReportBuilder) {
    // window of 1024 uncommitted ops; a slow disk journal (3 ms/commit)
    let throttled = run_cfg(1024, 3_000);
    // same protocol with commits fast enough to never throttle
    let fast_commit = run_cfg(1024, 25);
    // write-back tracking disabled entirely
    let disabled = run_cfg(0, 25);

    let mut t = ExpTable::new(
        "§4.8 — Lustre metadata write-back: creation throughput by phase [ops/s]",
        &[
            "configuration",
            "burst (0–1 s)",
            "steady (10–30 s)",
            "burst/steady",
        ],
    );
    for (label, pre) in [
        ("slow commits (window 1024, 3 ms)", &throttled),
        ("fast commits (window 1024, 25 µs)", &fast_commit),
        ("write-back tracking off", &disabled),
    ] {
        let burst = phase_throughput(pre, 0.0, 1.0);
        let steady = phase_throughput(pre, 10.0, 30.0);
        t.row(vec![
            label.into(),
            fmt_ops(burst),
            fmt_ops(steady),
            format!("{:.2}", burst / steady.max(1.0)),
        ]);
    }
    b.table(t);

    b.note(chart::time_chart(&throttled));
    b.artifact("exp_4_8_writeback.svg", chart::svg_time_chart(&throttled));

    let burst = phase_throughput(&throttled, 0.0, 1.0);
    let steady = phase_throughput(&throttled, 10.0, 30.0);
    let commit_rate = 1.0e6 / 3_000.0; // ops/s the commit pipeline can retire
    let fast_steady = phase_throughput(&fast_commit, 10.0, 30.0);
    let disabled_steady = phase_throughput(&disabled, 10.0, 30.0);

    b.metric_tol("throttled_burst", burst, 1e-6);
    b.metric_tol("throttled_steady", steady, 1e-6);
    b.metric_tol("fast_commit_steady", fast_steady, 1e-6);
    b.metric_tol("disabled_steady", disabled_steady, 1e-6);

    b.check(
        "burst_outruns_commit_bound_steady_state",
        burst > steady * 1.5,
        format!("{burst} vs {steady}"),
    );
    b.check(
        "steady_state_converges_to_commit_rate",
        (steady - commit_rate).abs() / commit_rate < 0.15,
        format!("{steady} vs {commit_rate}"),
    );
    b.check(
        "fast_commit_pipeline_never_throttles",
        (fast_steady - disabled_steady).abs() / disabled_steady < 0.1,
        format!("{fast_steady} vs {disabled_steady}"),
    );
    b.summary(format!(
        "slow-commit run bursts at {} ops/s then plateaus at {} (commit rate {}); fast commits sustain {} ≈ tracking-off {}",
        fmt_ops(burst),
        fmt_ops(steady),
        fmt_ops(commit_rate),
        fmt_ops(fast_steady),
        fmt_ops(disabled_steady)
    ));
}
