//! EXP-4.7.1/4.7.2 — Intra-node and inter-node scalability on the
//! namespace-aggregated Ontap GX cluster (paper §4.7.1–4.7.2).
//!
//! The 8-filer GX cluster owns one volume per filer. Shapes to reproduce:
//!
//! * a single client writing into ONE volume is bounded by that volume's
//!   owning D-blade no matter how many processes it runs,
//! * giving every process its own volume (the per-process **path list** of
//!   §3.3.6) spreads load over all D-blades and scales much further,
//! * multi-node runs against one volume still bottleneck on the owner;
//!   against all volumes they scale with the cluster,
//! * forwarded (N-blade → remote D-blade) requests cost ~25 % extra, so
//!   mount placement matters.

use crate::suite::{fmt_ops, fmt_x, make_workers, node_names, ExpTable, ReportBuilder};
use cluster::{run_sim, OpStream, SimConfig, WorkerSpec};
use dfs::{MetaOp, OntapGxFs};
use simcore::SimDuration;

/// Streams that create into a per-worker directory under the given volume
/// assignment function.
fn streams_into(
    workers: &[WorkerSpec],
    volume_of_worker: impl Fn(usize) -> usize,
) -> Vec<Box<dyn OpStream>> {
    workers
        .iter()
        .enumerate()
        .map(|(k, w)| {
            let dir = format!("/vol{}/n{}p{}", volume_of_worker(k), w.node, w.proc);
            let s: Box<dyn OpStream> = Box::new(move |i: u64| {
                Some(MetaOp::Create {
                    path: format!("{dir}/sub{}/f{i}", i / 5000),
                    data_bytes: 0,
                })
            });
            s
        })
        .collect()
}

fn throughput(
    nodes: usize,
    ppn: usize,
    volume_of_worker: impl Fn(usize) -> usize,
) -> (f64, (u64, u64)) {
    let mut model = OntapGxFs::with_defaults();
    let workers = make_workers(nodes, ppn);
    let streams = streams_into(&workers, volume_of_worker);
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(20));
    let res = run_sim(&mut model, &node_names(nodes), workers, streams, &cfg);
    (res.stonewall_ops_per_sec(), model.forwarding_stats())
}

pub fn run(b: &mut ReportBuilder) {
    // --- §4.7.1 single client -----------------------------------------------
    let procs = [1usize, 2, 4, 8, 16];
    let mut t = ExpTable::new(
        "§4.7.1 — single client on Ontap GX [ops/s]",
        &["processes", "one volume", "path list (8 volumes)", "gain"],
    );
    let mut single_vol = Vec::new();
    let mut path_list = Vec::new();
    for &p in &procs {
        let (one, _) = throughput(1, p, |_| 0);
        let (spread, _) = throughput(1, p, |k| k % 8);
        t.row(vec![
            p.to_string(),
            fmt_ops(one),
            fmt_ops(spread),
            fmt_x(spread / one),
        ]);
        single_vol.push(one);
        path_list.push(spread);
    }
    b.table(t);

    // --- §4.7.2 multi-node ---------------------------------------------------
    let nodes_list = [1usize, 2, 4, 8, 16];
    let mut t2 = ExpTable::new(
        "§4.7.2 — multi-node on Ontap GX, 1 ppn [ops/s]",
        &["nodes", "one volume", "per-node volumes", "forwarded share"],
    );
    let mut one_vol_nodes = Vec::new();
    let mut all_vol_nodes = Vec::new();
    for &n in &nodes_list {
        let (one, _) = throughput(n, 1, |_| 0);
        let (spread, (fwd, local)) = throughput(n, 1, |k| k % 8);
        t2.row(vec![
            n.to_string(),
            fmt_ops(one),
            fmt_ops(spread),
            format!("{:.0}%", 100.0 * fwd as f64 / (fwd + local).max(1) as f64),
        ]);
        one_vol_nodes.push(one);
        all_vol_nodes.push(spread);
    }
    b.table(t2);

    // --- forwarding efficiency -----------------------------------------------
    // node 0 mounts filer 0: vol0 is local, vol5 is always forwarded
    let (local_tp, _) = throughput(1, 4, |_| 0);
    let (remote_tp, (fwd, _)) = throughput(1, 4, |_| 5);
    let mut t3 = ExpTable::new(
        "§4.7 — forwarding efficiency (client mounted on filer 0)",
        &["target volume", "ops/s", "requests forwarded"],
    );
    t3.row(vec![
        "vol0 (local D-blade)".into(),
        fmt_ops(local_tp),
        "0".into(),
    ]);
    t3.row(vec![
        "vol5 (remote D-blade)".into(),
        fmt_ops(remote_tp),
        fwd.to_string(),
    ]);
    b.table(t3);
    let efficiency = remote_tp / local_tp;
    b.note(format!(
        "remote/local efficiency: {:.0}% (paper cites ~75 % [ECK+07])",
        efficiency * 100.0
    ));

    b.metric_tol("single_vol_16_procs", single_vol[4], 1e-6);
    b.metric_tol("path_list_16_procs", path_list[4], 1e-6);
    b.metric_tol("one_vol_16_nodes", one_vol_nodes[4], 1e-6);
    b.metric_tol("all_vols_16_nodes", all_vol_nodes[4], 1e-6);
    b.metric_tol("forwarding_efficiency", efficiency, 1e-6);

    b.check(
        "one_volume_saturates_its_dblade",
        single_vol[4] < single_vol[0] * 16.0 * 0.5,
        format!("{} @16 procs vs {} @1", single_vol[4], single_vol[0]),
    );
    b.check(
        "path_list_spreads_dblade_load",
        path_list[4] > single_vol[4] * 1.5,
        format!("{} vs {}", path_list[4], single_vol[4]),
    );
    b.check(
        "multi_node_scaling_needs_multiple_volumes",
        all_vol_nodes[4] > one_vol_nodes[4] * 1.5,
        format!("{} vs {}", all_vol_nodes[4], one_vol_nodes[4]),
    );
    b.check(
        "forwarding_overhead_noticeable_but_bounded",
        (0.6..0.95).contains(&efficiency),
        format!("{efficiency:.2}"),
    );
    b.summary(format!(
        "one volume caps at {} ops/s regardless of process count; path list reaches {} at 16 procs ({:.2}×); per-node volumes scale {} → {} over 16 nodes; measured forwarding efficiency {:.0} %",
        fmt_ops(single_vol[4]),
        fmt_ops(path_list[4]),
        path_list[4] / single_vol[4],
        fmt_ops(all_vol_nodes[0]),
        fmt_ops(all_vol_nodes[4]),
        efficiency * 100.0
    ));
}
