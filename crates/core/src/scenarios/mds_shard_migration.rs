//! SHARD — correctness of lazy migration under live traffic.
//!
//! While a split/migrate/merge schedule edits the subtree table, every
//! operation must still resolve to **exactly one** authoritative shard —
//! no op lost, none double-applied, and the placement layer consulted
//! exactly once per operation. This scenario drives a finite workload
//! through a three-event schedule (split `/hot/sub0` away, migrate
//! `/hot/sub1`, merge `/hot/sub0` back) and audits conservation:
//! `lookups == ops planned == ops completed`, zero errors, and the lazy
//! referral forwards bounded by one per node per moved subtree. The
//! authority function itself is sampled across the event boundaries
//! (the unbounded property-test version lives in
//! `tests/shardmds_placement.rs`).

use crate::suite::{make_workers, node_names, ExpTable, ReportBuilder};
use cluster::{run_sim, OpStream, SimConfig};
use dfs::{MetaOp, ReshardAction, ReshardEvent, ShardMds, ShardMdsConfig, ShardPlacement};
use simcore::SimTime;

const NODES: usize = 4;
const PPN: usize = 2;
const OPS_PER_WORKER: u64 = 1500;
const MOVES: usize = 3;

fn schedule() -> Vec<ReshardEvent> {
    vec![
        ReshardEvent {
            at: SimTime::from_millis(100),
            action: ReshardAction::Assign {
                prefix: "/hot/sub0".to_owned(),
                to: 2,
            },
        },
        ReshardEvent {
            at: SimTime::from_millis(200),
            action: ReshardAction::Assign {
                prefix: "/hot/sub1".to_owned(),
                to: 3,
            },
        },
        ReshardEvent {
            at: SimTime::from_millis(300),
            action: ReshardAction::Remove {
                prefix: "/hot/sub0".to_owned(),
            },
        },
    ]
}

pub fn run(b: &mut ReportBuilder) {
    let mut model = ShardMds::new(ShardMdsConfig {
        shards: 4,
        placement: ShardPlacement::Subtree,
        table: vec![("/".to_owned(), 0), ("/hot".to_owned(), 1)],
        reshard: schedule(),
        allow_partition: false, // the report audits model counters below
        ..ShardMdsConfig::default()
    });

    // authority is a pure function of (schedule, time, path): sample the
    // grid around every event boundary before running any traffic
    let mut samples = 0u64;
    let mut unique = true;
    for ms in [0u64, 99, 100, 199, 200, 299, 300, 400] {
        let now = SimTime::from_millis(ms);
        for path in ["/hot/sub0/f", "/hot/sub1/f", "/hot/other/f", "/data/w0/f"] {
            let s = model.authority_of(path, now);
            samples += 1;
            unique &= s < 4 && s == model.authority_of(path, now);
        }
    }

    let workers = make_workers(NODES, PPN);
    let streams: Vec<Box<dyn OpStream>> = (0..workers.len())
        .map(|w| {
            Box::new(move |i: u64| {
                if i >= OPS_PER_WORKER {
                    return None;
                }
                // two thirds of the traffic rides the migrating subtrees
                Some(if !i.is_multiple_of(3) {
                    MetaOp::Create {
                        path: format!("/hot/sub{}/w{w}f{i}", i % 2),
                        data_bytes: 0,
                    }
                } else {
                    MetaOp::Stat {
                        path: format!("/data/w{w}/f{i}"),
                    }
                })
            }) as Box<dyn OpStream>
        })
        .collect();
    let cfg = SimConfig {
        node_cores: 1,
        ..SimConfig::default()
    };
    let res = run_sim(&mut model, &node_names(NODES), workers, streams, &cfg);

    let total = (NODES * PPN) as u64 * OPS_PER_WORKER;
    let done = res.total_ops();
    let errors: u64 = res.workers.iter().map(|w| w.errors).sum();
    let lookups = model.lookups();
    let migrations = model.migrations();
    let placement_rpcs = model.placement_rpcs();

    let mut t = ExpTable::new(
        "Conservation audit — 12 000 ops across a split/migrate/merge schedule",
        &["quantity", "value"],
    );
    t.row(vec!["ops issued".into(), total.to_string()]);
    t.row(vec!["ops completed".into(), done.to_string()]);
    t.row(vec!["placement lookups".into(), lookups.to_string()]);
    t.row(vec!["referral forwards".into(), migrations.to_string()]);
    t.row(vec![
        "cold placement RPCs".into(),
        placement_rpcs.to_string(),
    ]);
    t.row(vec!["plan errors".into(), errors.to_string()]);
    b.table(t);

    b.metric_exact("ops_completed", done as f64);
    b.metric_exact("lookups", lookups as f64);
    b.metric_exact("migrations", migrations as f64);
    b.metric_exact("placement_rpcs", placement_rpcs as f64);

    b.check(
        "authority_unique_at_boundaries",
        unique && samples == 32,
        format!("{samples} samples across the event instants"),
    );
    b.check(
        "no_op_lost_or_duplicated",
        done == total && lookups == total,
        format!("{done} completed, {lookups} resolved, {total} issued"),
    );
    b.check("no_plan_errors", errors == 0, format!("{errors} errors"));
    b.check(
        "migration_really_happened",
        migrations > 0,
        format!("{migrations} referral forwards"),
    );
    b.check(
        "forwarding_bounded_by_node_moves",
        migrations as usize <= NODES * MOVES,
        format!("{migrations} forwards, bound {}", NODES * MOVES),
    );
    b.summary(format!(
        "{done}/{total} ops completed, {lookups} placement resolutions, \
         {migrations} lazy forwards across {MOVES} table moves, {errors} errors"
    ));
}
