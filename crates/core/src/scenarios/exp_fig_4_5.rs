//! FIG-4.5 — Recognizing a server-side snapshot disturbance (paper §4.2.3).
//!
//! Same setup as Fig. 4.4 (MakeFiles, 4 nodes × 1 ppn, NFS), but the *filer*
//! creates multiple snapshots starting at t ≈ 9 s. The paper's finding: the
//! per-process COV also rises, but "in a much more random manner" — because
//! a server pause hits whichever requests happen to be in flight, not one
//! designated node.

use crate::suite::{fmt_ops, run_makefiles, ExpTable, ReportBuilder};
use crate::{chart, preprocess, ResultSet};
use cluster::{Disturbance, SimConfig};
use dfs::NfsFs;
use simcore::{SimDuration, SimTime};

pub fn run(b: &mut ReportBuilder) {
    let mut model = NfsFs::with_defaults();
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(60));
    cfg.node_cores = 1;
    // the filer creates several snapshots back to back from t = 9 s
    for k in 0..6u64 {
        cfg.disturbances.push(Disturbance::ServerPause {
            server: 0,
            at: SimTime::from_millis(9_000 + k * 1_700),
            duration: SimDuration::from_millis(260 + (k * 97) % 200),
        });
    }
    let res = run_makefiles(&mut model, 4, 1, &cfg);
    let rs = ResultSet::from_run("MakeFiles", 4, 1, &res);
    let pre = preprocess(&rs, &[]);

    let window = |from: f64, to: f64| -> (f64, f64, f64) {
        let rows: Vec<_> = pre
            .intervals
            .iter()
            .filter(|r| r.timestamp > from && r.timestamp <= to)
            .collect();
        let tp = rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64;
        let cov_mean = rows.iter().map(|r| r.cov).sum::<f64>() / rows.len().max(1) as f64;
        let cov_max = rows.iter().map(|r| r.cov).fold(0.0, f64::max);
        (tp, cov_mean, cov_max)
    };

    let mut t = ExpTable::new(
        "Fig. 4.5 — MakeFiles 4 nodes × 1 ppn, filer snapshots from t ≈ 9 s",
        &["window", "ops/s", "mean COV", "max COV"],
    );
    for (label, from, to) in [
        ("before (2–9 s)", 2.0, 9.0),
        ("snapshots (9–20 s)", 9.0, 20.0),
        ("after (20–40 s)", 20.0, 40.0),
    ] {
        let (tp, cm, cx) = window(from, to);
        t.row(vec![
            label.into(),
            fmt_ops(tp),
            format!("{cm:.3}"),
            format!("{cx:.3}"),
        ]);
    }
    b.table(t);
    b.note(chart::time_chart(&pre));
    b.artifact("fig_4_5_snapshots.svg", chart::svg_time_chart(&pre));

    let (tp_before, _, covmax_before) = window(2.0, 9.0);
    let (tp_during, _, covmax_during) = window(9.0, 20.0);
    b.metric_tol("before_ops", tp_before, 1e-6);
    b.metric_tol("during_ops", tp_during, 1e-6);
    b.metric_tol("before_cov_max", covmax_before, 1e-6);
    b.metric_tol("during_cov_max", covmax_during, 1e-6);

    b.check(
        "snapshots_cost_throughput",
        tp_during < tp_before,
        format!("{tp_before} → {tp_during}"),
    );
    b.check(
        "cov_spikes_erratically",
        covmax_during > covmax_before * 2.0,
        format!("{covmax_before} → {covmax_during}"),
    );
    b.summary(format!(
        "ops/s {} → {} during snapshots; max COV spikes {:.3} → {:.3}, erratic",
        fmt_ops(tp_before),
        fmt_ops(tp_during),
        covmax_before,
        covmax_during
    ));
}
