//! FAULT — AFS file-server crash, restart and callback-break storm.
//!
//! The paper leans on AFS callbacks for locally-served stats (§2.6.1,
//! §4.7.3); this scenario exercises what the paper never runs: the server
//! *restarting*. A restarted AFS file server has lost its callback state,
//! so every client cache entry is broken at once and the next stat of each
//! file pays a fetch RPC again. While the server is down, the
//! single-threaded cache manager retries with backoff and the whole node
//! stalls behind it.
//!
//! Workload: each worker creates a file then stats it three times (1 RPC +
//! 3 local hits per group). Server 2 — the one serving `/vol1` — crashes
//! at 10 s and restarts at 12 s.

use crate::suite::{fmt_ops, make_workers, node_names, ExpTable, ReportBuilder};
use crate::{chart, preprocess, ResultSet};
use cluster::{run_sim, OpStream, SimConfig, WorkerSpec};
use dfs::{AfsFs, MetaOp};
use netsim::fault::FaultSpec;
use simcore::SimDuration;

fn streams(workers: &[WorkerSpec]) -> Vec<Box<dyn OpStream>> {
    workers
        .iter()
        .map(|w| {
            let dir = format!("/vol1/n{}p{}", w.node, w.proc);
            let s: Box<dyn OpStream> = Box::new(move |i: u64| {
                let group = i / 4 * 4;
                Some(if i.is_multiple_of(4) {
                    MetaOp::Create {
                        path: format!("{dir}/f{group}"),
                        data_bytes: 0,
                    }
                } else {
                    MetaOp::Stat {
                        path: format!("{dir}/f{group}"),
                    }
                })
            });
            s
        })
        .collect()
}

pub fn run(b: &mut ReportBuilder) {
    let mut model = AfsFs::with_defaults();
    // /vol1 lives on file server 1 → ServerId(2) in the AFS server layout.
    model.set_faults(
        FaultSpec::parse("crash:2@10s+2s")
            .expect("valid spec")
            .build(),
    );
    let workers = make_workers(2, 2);
    let streams = streams(&workers);
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(20));
    cfg.node_cores = 1;
    let res = run_sim(&mut model, &node_names(2), workers, streams, &cfg);
    let retries = res.total_retries();
    let breaks = model.callback_breaks();
    let rs = ResultSet::from_run("CreateStat", 2, 2, &res);
    let pre = preprocess(&rs, &[]);

    let window = |from: f64, to: f64| -> f64 {
        let rows: Vec<_> = pre
            .intervals
            .iter()
            .filter(|r| r.timestamp > from && r.timestamp <= to)
            .collect();
        rows.iter().map(|r| r.throughput).sum::<f64>() / rows.len().max(1) as f64
    };

    let steady = window(5.0, 10.0);
    let outage = window(10.0, 12.5);
    let recovered = window(15.0, 20.0);

    let mut t = ExpTable::new(
        "AFS file-server restart — create+stat 2 nodes × 2 ppn, /vol1's server down 10–12 s",
        &["window", "ops/s"],
    );
    t.row(vec!["steady (5–10 s)".into(), fmt_ops(steady)]);
    t.row(vec!["outage (10–12.5 s)".into(), fmt_ops(outage)]);
    t.row(vec!["recovered (15–20 s)".into(), fmt_ops(recovered)]);
    b.table(t);
    b.note(chart::time_chart(&pre));
    b.artifact("fault_afs_restart.svg", chart::svg_time_chart(&pre));

    b.metric_tol("steady_ops", steady, 1e-6);
    b.metric_tol("outage_ops", outage, 1e-6);
    b.metric_tol("recovered_ops", recovered, 1e-6);
    b.metric_exact("rpc_retries", retries as f64);
    b.metric_exact("callback_breaks", breaks as f64);

    b.check(
        "outage_stalls_the_cache_manager",
        outage < steady * 0.3,
        format!("{steady} → {outage} ops/s with the server down"),
    );
    b.check(
        "cache_manager_retries",
        retries >= 1,
        format!("{retries} timeout/backoff retries"),
    );
    b.check(
        "restart_breaks_callbacks_in_a_storm",
        breaks > 0,
        format!("{breaks} callbacks broken on restart"),
    );
    b.check(
        "service_recovers_after_restart",
        recovered > steady * 0.7,
        format!("{steady} → {recovered} ops/s after refetching callbacks"),
    );
    b.summary(format!(
        "ops/s {} → {} during the 2 s outage, {} recovered; {} retries, {} callbacks broken by the restart storm",
        fmt_ops(steady),
        fmt_ops(outage),
        fmt_ops(recovered),
        retries,
        breaks
    ));
}
