//! Wall-clock benchmark harness (`dmetabench bench`).
//!
//! Unlike the shape-regression suite, which runs on **virtual** time and is
//! bit-reproducible, this module measures **real** elapsed time so the repo
//! can record a perf trajectory across PRs. Each benched scenario is run
//! `reps` times after one untimed warmup, and the per-rep wall-clock samples
//! are summarized and written to `BENCH_<scenario>.json` (schema
//! [`SCHEMA`]).
//!
//! Two kinds of scenario are benchable:
//!
//! * **micro** workloads defined here — [`micro_ids`] — that hammer one
//!   subsystem directly. `snapshot_churn` is checkpoint/snapshot-heavy
//!   (it exercises the consistency-point image capture path, paper §4.8);
//!   `create_churn` is the identical metadata workload *without* any
//!   checkpoints, serving as the regression control; `sim_hotpath` is pure
//!   discrete-event scheduler churn (no file-system work at all) — the
//!   yardstick for the event-loop hot path; `stress_grid` is a
//!   Task-Bench-style parameterized sweep of workers × servers × op-mix
//!   over a fixed synthetic substrate, exercising the whole engine
//!   (scheduler + resources + telemetry-off fast path) without any
//!   file-system semantics. `sim_hotpath_mt` and `stress_grid_mt` are the
//!   multi-threaded twins (independent event-loop lanes / concurrent grid
//!   cells on `--sim-threads` OS threads) — same deterministic op totals,
//!   wall-clock measures cross-core scaling.
//! * any registered **suite** scenario by id (`exp_4_8_writeback`, …),
//!   timed end to end.
//!
//! [`compare`] diffs two emitted `BENCH_*.json` files (median deltas with a
//! regression threshold) — the repo's committed BENCH files are the
//! reference side.

use crate::suite;
use cluster::{run_sim, SimConfig, WorkerSpec};
use dfs::{
    ClientCtx, DistFs, FsResources, MetaOp, OpPlan, PartitionPlan, SemId, SemSpec, ServerId,
    ServerSpec, Stage,
};
use memfs::{FsResult, MemFs, OpenFlags, Vfs};
use serde::{Deserialize, Serialize};
use simcore::{par, DetRng, EventId, Scheduler, SimDuration, SimTime};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema tag stamped into every emitted `BENCH_*.json`.
pub const SCHEMA: &str = "dmetabench.bench/v1";

/// Summary statistics over the per-rep wall-clock samples, in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchStats {
    /// Fastest rep.
    pub min_secs: f64,
    /// Median rep (the headline number — robust against one slow rep).
    pub median_secs: f64,
    /// Arithmetic mean.
    pub mean_secs: f64,
    /// Slowest rep.
    pub max_secs: f64,
    /// Population standard deviation.
    pub stddev_secs: f64,
}

impl BenchStats {
    /// Compute stats over one or more samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "bench needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        BenchStats {
            min_secs: sorted[0],
            median_secs: median,
            mean_secs: mean,
            max_secs: sorted[n - 1],
            stddev_secs: var.sqrt(),
        }
    }
}

/// One benched scenario's result — serialized as `BENCH_<scenario>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Scenario id (micro workload name or registered suite id).
    pub scenario: String,
    /// `"micro"` or `"suite"`.
    pub kind: String,
    /// Timed repetitions (after one untimed warmup).
    pub reps: u32,
    /// Whether the workload ran in reduced `--quick` geometry.
    pub quick: bool,
    /// Metadata operations per rep (0 for suite scenarios, which report
    /// their own op counts in the shape suite).
    pub ops: u64,
    /// Raw per-rep wall-clock samples, seconds, in run order.
    pub samples_secs: Vec<f64>,
    /// Summary statistics over `samples_secs`.
    pub stats: BenchStats,
    /// `ops / median_secs` (0.0 when `ops` is 0).
    pub ops_per_sec_median: f64,
}

/// Ids of the built-in micro workloads.
pub fn micro_ids() -> &'static [&'static str] {
    &[
        "snapshot_churn",
        "create_churn",
        "sim_hotpath",
        "sim_hotpath_mt",
        "stress_grid",
        "stress_grid_mt",
    ]
}

/// Geometry of the churn workloads.
struct ChurnGeometry {
    dirs: usize,
    files_per_dir: usize,
    rounds: usize,
    rewrites_per_round: usize,
    recreates_per_round: usize,
}

impl ChurnGeometry {
    fn new(quick: bool) -> Self {
        if quick {
            ChurnGeometry {
                dirs: 8,
                files_per_dir: 32,
                rounds: 3,
                rewrites_per_round: 64,
                recreates_per_round: 16,
            }
        } else {
            ChurnGeometry {
                dirs: 16,
                files_per_dir: 128,
                rounds: 8,
                rewrites_per_round: 256,
                recreates_per_round: 64,
            }
        }
    }
}

/// How many snapshots the churn workload keeps live (WAFL keeps a small
/// rotating set of consistency points).
const SNAPSHOT_KEEP: usize = 4;

/// Run the churn workload; with `snapshots` each round ends in a
/// consistency point (`checkpoint()` + `snapshot_create()` with rotation).
/// Returns the number of metadata operations performed.
fn run_churn(quick: bool, snapshots: bool) -> u64 {
    let g = ChurnGeometry::new(quick);
    let payload = vec![0xa5u8; 4096]; // > inline_max: engages the allocator
    let mut fs = MemFs::new();
    let mut ops: u64 = 0;
    for d in 0..g.dirs {
        fs.mkdir(&format!("/d{d}")).expect("mkdir");
        ops += 1;
        for f in 0..g.files_per_dir {
            let path = format!("/d{d}/f{f}");
            let fd = fs.create(&path).expect("create");
            fs.write(fd, &payload).expect("write");
            fs.close(fd).expect("close");
            ops += 3;
        }
    }
    let total_files = g.dirs * g.files_per_dir;
    for round in 0..g.rounds {
        for k in 0..g.rewrites_per_round {
            let idx = (round * g.rewrites_per_round + k * 7) % total_files;
            let path = format!("/d{}/f{}", idx / g.files_per_dir, idx % g.files_per_dir);
            let fd = fs.open(&path, OpenFlags::write_only()).expect("open");
            fs.write(fd, &payload).expect("rewrite");
            fs.close(fd).expect("close");
            ops += 3;
        }
        for k in 0..g.recreates_per_round {
            let idx = (round * g.recreates_per_round + k * 11) % total_files;
            let path = format!("/d{}/f{}", idx / g.files_per_dir, idx % g.files_per_dir);
            fs.unlink(&path).expect("unlink");
            let fd = fs.create(&path).expect("recreate");
            fs.write(fd, &payload).expect("write");
            fs.close(fd).expect("close");
            ops += 4;
        }
        if snapshots {
            fs.checkpoint();
            fs.snapshot_create(&format!("cp{round}")).expect("snapshot");
            ops += 2;
            if round >= SNAPSHOT_KEEP {
                fs.snapshot_delete(&format!("cp{}", round - SNAPSHOT_KEEP))
                    .expect("rotate");
                ops += 1;
            }
        }
    }
    ops
}

/// Geometry of the `sim_hotpath` micro.
struct HotpathGeometry {
    /// Steady-state pending-event population.
    population: usize,
    /// Events delivered by the timed loop.
    deliveries: u64,
}

impl HotpathGeometry {
    fn new(quick: bool) -> Self {
        if quick {
            HotpathGeometry {
                population: 4_096,
                deliveries: 200_000,
            }
        } else {
            HotpathGeometry {
                population: 65_536,
                deliveries: 2_000_000,
            }
        }
    }
}

/// Pure scheduler churn: no file-system work, no telemetry, no engine — just
/// schedule / pop / cancel at a steady pending population, the raw event-loop
/// hot path. Deltas span sub-microsecond to ~1 ms (several timer-wheel
/// levels), every 16th delivery schedules a same-instant event (FIFO path),
/// and every 8th delivery schedules a far-out "victim" that is cancelled once
/// a small ring wraps (tombstone + slot-reuse path). Returns the number of
/// deliveries (the `ops` headline).
fn run_sim_hotpath(quick: bool) -> u64 {
    let g = HotpathGeometry::new(quick);
    hotpath_lane(g.population, g.deliveries, 0xD1CE)
}

/// `sim_hotpath` across independent schedulers: the same total delivery
/// budget split over four lanes, each lane a private [`Scheduler`] driven by
/// [`hotpath_lane`], dispatched with [`par::run_independent`] on
/// `--sim-threads` OS threads (default 4). The per-lane op counts are pure
/// functions of the lane index, so the headline is deterministic at every
/// thread count; the wall-clock measures how well independent event loops
/// scale across cores.
fn run_sim_hotpath_mt(quick: bool) -> u64 {
    const LANES: usize = 4;
    let g = HotpathGeometry::new(quick);
    let threads = cluster::sim_threads().unwrap_or(LANES);
    let (pop, deliveries) = (g.population / LANES, g.deliveries / LANES as u64);
    par::run_independent(LANES, threads, |lane| {
        hotpath_lane(pop, deliveries, 0xD1CE ^ (lane as u64) << 8)
    })
    .into_iter()
    .sum()
}

/// One `sim_hotpath` event loop: `population` steady-state pending events,
/// `deliveries` timed pops, delay tables drawn from `seed`.
fn hotpath_lane(population: usize, deliveries: u64, seed: u64) -> u64 {
    let mut rng = DetRng::new(seed);
    // Pre-draw the delay sequences so the timed loop measures the scheduler,
    // not the RNG. Every 16th near-delta is zero (same-instant FIFO path).
    const TABLE: usize = 4_096;
    let near: Vec<SimDuration> = (0..TABLE)
        .map(|i| {
            if i % 16 == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(rng.uniform_u64(1, 1_000_000))
            }
        })
        .collect();
    let far: Vec<SimDuration> = (0..TABLE)
        .map(|_| SimDuration::from_nanos(rng.uniform_u64(10_000_000, 1_000_000_000)))
        .collect();
    let mut s: Scheduler<u64> = Scheduler::new();
    for i in 0..population {
        let at = SimTime::ZERO + near[i % TABLE].max(SimDuration::from_nanos(1));
        s.schedule_at(at, i as u64);
    }
    // Ring of cancellation victims: far enough out that they are almost
    // always still pending when the ring wraps and cancels them.
    const RING: usize = 512;
    let mut ring: Vec<Option<EventId>> = vec![None; RING];
    let mut ring_at = 0usize;
    for n in 0..deliveries {
        let (_, payload) = s.pop().expect("population never drains");
        s.schedule_after(near[(n as usize) % TABLE], payload);
        if n % 8 == 0 {
            let id = s.schedule_after(far[(n as usize / 8) % TABLE], u64::MAX);
            if let Some(old) = ring[ring_at].replace(id) {
                s.cancel(old);
            }
            ring_at = (ring_at + 1) % RING;
        }
    }
    deliveries
}

/// The fixed synthetic substrate under the `stress_grid` sweep: a [`DistFs`]
/// with `servers` identical queueing stations and one shared semaphore, whose
/// plans depend only on the op *kind* (no real namespace, no [`MemFs`]). This
/// keeps the grid a pure engine benchmark — scheduler, CPU/server resources,
/// and semaphore wake chains — in the spirit of Task Bench's fixed-substrate
/// parameter sweeps.
struct GridFs {
    servers: usize,
    /// Per-client plan counters: server selection is a pure function of
    /// `(node, proc, per-client op index)`, so the plan stream each client
    /// sees is independent of how clients interleave — the property that
    /// lets a domain replica answer for its own clients bit-identically to
    /// the unsplit model.
    calls: HashMap<(usize, usize), u64>,
    /// Every 4th plan wraps its server stage in the shared semaphore when
    /// the mix asks for lock traffic.
    planned: u64,
    use_sem: bool,
    /// Whether this instance may offer a domain decomposition (disabled for
    /// the cell-parallel `stress_grid_mt`, which must not nest the windowed
    /// engine inside its own worker threads).
    partition_ok: bool,
}

impl GridFs {
    fn new(servers: usize, use_sem: bool) -> Self {
        GridFs {
            servers,
            calls: HashMap::new(),
            planned: 0,
            use_sem,
            partition_ok: true,
        }
    }
}

impl DistFs for GridFs {
    fn resources(&self) -> FsResources {
        FsResources {
            servers: (0..self.servers)
                .map(|i| ServerSpec {
                    name: format!("grid{i}"),
                    parallelism: 2,
                })
                .collect(),
            semaphores: if self.use_sem {
                vec![SemSpec {
                    name: "grid-lock".to_owned(),
                    permits: 2,
                }]
            } else {
                Vec::new()
            },
        }
    }

    fn register_clients(&mut self, _nodes: usize) {}

    fn partition(&self, nodes: usize) -> Option<PartitionPlan> {
        if self.use_sem || !self.partition_ok {
            return None; // the shared semaphore couples every domain
        }
        let domains = self.servers.min(nodes);
        if domains < 2 {
            return None;
        }
        Some(PartitionPlan {
            server_domain: (0..self.servers).map(|s| s % domains).collect(),
            node_domain: (0..nodes).map(|n| n % domains).collect(),
            models: (0..domains)
                .map(|_| Box::new(GridFs::new(self.servers, false)) as Box<dyn DistFs>)
                .collect(),
            // both NetDelay stages below are exactly this long, and they are
            // the only cross-domain interaction
            lookahead: SimDuration::from_micros(50),
        })
    }

    fn plan(
        &mut self,
        client: ClientCtx,
        op: &MetaOp,
        _now: SimTime,
        _rng: &mut DetRng,
    ) -> FsResult<OpPlan> {
        let calls = self.calls.entry((client.node, client.proc)).or_insert(0);
        let server = ServerId((client.node * 4 + client.proc + *calls as usize) % self.servers);
        *calls += 1;
        self.planned += 1;
        // Cost depends only on the op kind: creates are "writes" (heavier
        // service demand), everything else is a cheap lookup.
        let demand = match op {
            MetaOp::Create { .. } | MetaOp::Unlink { .. } => SimDuration::from_micros(30),
            _ => SimDuration::from_micros(10),
        };
        let mut stages = Vec::with_capacity(6);
        stages.push(Stage::ClientCpu {
            demand: SimDuration::from_micros(2),
        });
        stages.push(Stage::NetDelay {
            delay: SimDuration::from_micros(50),
        });
        let locked = self.use_sem && self.planned.is_multiple_of(4);
        if locked {
            stages.push(Stage::AcquireSem { sem: SemId(0) });
        }
        stages.push(Stage::Server { server, demand });
        if locked {
            stages.push(Stage::ReleaseSem { sem: SemId(0) });
        }
        stages.push(Stage::NetDelay {
            delay: SimDuration::from_micros(50),
        });
        Ok(OpPlan {
            stages,
            ..Default::default()
        })
    }

    fn drop_caches(&mut self, _node: usize) {}

    fn name(&self) -> &str {
        "gridfs"
    }
}

/// One cell of the stress grid: `workers` workers (4 per node) against
/// `servers` stations, issuing `ops_per_worker` ops of the given mix.
/// `partitioned` lets the model offer a domain decomposition (so
/// `--sim-threads` routes eligible cells to the windowed engine); the
/// op-count result is identical either way. Returns ops completed.
fn run_grid_cell(
    workers: usize,
    servers: usize,
    mix: &str,
    ops_per_worker: u64,
    partitioned: bool,
) -> u64 {
    let use_sem = mix == "mixed";
    let mut model = GridFs::new(servers, use_sem);
    model.partition_ok = partitioned;
    let nodes = workers.div_ceil(4).max(1);
    let node_names: Vec<String> = (0..nodes).map(|i| format!("gn{i}")).collect();
    let specs: Vec<WorkerSpec> = (0..workers)
        .map(|w| WorkerSpec::new(w / 4, w % 4))
        .collect();
    let mix_owned = mix.to_owned();
    let streams: Vec<Box<dyn cluster::OpStream>> = (0..workers)
        .map(|w| {
            let mix = mix_owned.clone();
            Box::new(move |i: u64| {
                if i >= ops_per_worker {
                    return None;
                }
                let path = format!("/g/w{w}/f{i}");
                Some(match mix.as_str() {
                    "create" => MetaOp::Create {
                        path,
                        data_bytes: 0,
                    },
                    "stat" => MetaOp::Stat { path },
                    // mixed: creates, stats and opens interleaved
                    _ => match i % 4 {
                        0 => MetaOp::Create {
                            path,
                            data_bytes: 0,
                        },
                        1 | 2 => MetaOp::Stat { path },
                        _ => MetaOp::OpenClose { path },
                    },
                })
            }) as Box<dyn cluster::OpStream>
        })
        .collect();
    let config = SimConfig {
        seed: 0x9318 + workers as u64 * 31 + servers as u64,
        ..Default::default()
    };
    let res = run_sim(&mut model, &node_names, specs, streams, &config);
    res.total_ops()
}

/// The cell axes of the stress grid.
fn grid_cells(quick: bool) -> (Vec<(usize, usize, &'static str)>, u64) {
    let (worker_axis, server_axis, ops_per_worker): (&[usize], &[usize], u64) = if quick {
        (&[4, 16], &[1, 4], 100)
    } else {
        (&[4, 16, 64], &[1, 4, 16], 400)
    };
    let mut cells = Vec::new();
    for &w in worker_axis {
        for &s in server_axis {
            for mix in ["create", "stat", "mixed"] {
                cells.push((w, s, mix));
            }
        }
    }
    (cells, ops_per_worker)
}

/// Task-Bench-style stress grid: sweep workers × servers × op-mix over the
/// fixed [`GridFs`] substrate. Returns total ops across all cells.
fn run_stress_grid(quick: bool) -> u64 {
    let (cells, ops_per_worker) = grid_cells(quick);
    cells
        .iter()
        .map(|&(w, s, mix)| run_grid_cell(w, s, mix, ops_per_worker, true))
        .sum()
}

/// The stress grid with cell-level parallelism: every cell is an
/// independent simulation (own model, scheduler, RNG), so the sweep runs
/// cells concurrently on `--sim-threads` OS threads (default 4) via
/// [`par::run_independent`], largest cells first (LPT order) for the best
/// makespan. Each cell itself runs the classic sequential engine — results
/// are the per-cell op counts, summed, identical at every thread count.
fn run_stress_grid_mt(quick: bool) -> u64 {
    let threads = cluster::sim_threads().unwrap_or(4);
    let (mut cells, ops_per_worker) = grid_cells(quick);
    cells.sort_by_key(|&(w, s, _)| std::cmp::Reverse((w, s)));
    par::run_independent(cells.len(), threads, |i| {
        let (w, s, mix) = cells[i];
        run_grid_cell(w, s, mix, ops_per_worker, false)
    })
    .into_iter()
    .sum()
}

/// Run one benchable scenario once; returns the op count (0 for suite
/// scenarios).
///
/// # Errors
///
/// Unknown id, or a suite scenario that panics.
fn run_once(id: &str) -> Result<u64, String> {
    match id {
        "snapshot_churn" => Ok(run_churn(false, true)),
        "create_churn" => Ok(run_churn(false, false)),
        "sim_hotpath" => Ok(run_sim_hotpath(false)),
        "sim_hotpath_mt" => Ok(run_sim_hotpath_mt(false)),
        "stress_grid" => Ok(run_stress_grid(false)),
        "stress_grid_mt" => Ok(run_stress_grid_mt(false)),
        _ => {
            let scenario =
                suite::find(id).ok_or_else(|| format!("unknown bench scenario `{id}`"))?;
            let result = suite::run_scenario(scenario);
            result.outcome.map(|_| 0).map_err(|e| format!("{id}: {e}"))
        }
    }
}

/// Quick-mode variant of [`run_once`].
fn run_once_quick(id: &str) -> Result<u64, String> {
    match id {
        "snapshot_churn" => Ok(run_churn(true, true)),
        "create_churn" => Ok(run_churn(true, false)),
        "sim_hotpath" => Ok(run_sim_hotpath(true)),
        "sim_hotpath_mt" => Ok(run_sim_hotpath_mt(true)),
        "stress_grid" => Ok(run_stress_grid(true)),
        "stress_grid_mt" => Ok(run_stress_grid_mt(true)),
        _ => run_once(id),
    }
}

/// Bench one scenario: one untimed warmup, then `reps` timed runs.
///
/// # Errors
///
/// Unknown scenario id, `reps == 0`, or a failing suite scenario.
pub fn run_bench(id: &str, reps: u32, quick: bool) -> Result<BenchReport, String> {
    if reps == 0 {
        return Err("reps must be >= 1".to_owned());
    }
    let is_micro = micro_ids().contains(&id);
    if !is_micro && suite::find(id).is_none() {
        return Err(format!(
            "unknown bench scenario `{id}` (micro: {}; or any suite id)",
            micro_ids().join(", ")
        ));
    }
    let run = if quick { run_once_quick } else { run_once };
    let mut ops = run(id)?; // warmup
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let t0 = Instant::now();
        ops = run(id)?;
        samples.push(t0.elapsed().as_secs_f64());
    }
    let stats = BenchStats::from_samples(&samples);
    let ops_per_sec_median = if ops > 0 && stats.median_secs > 0.0 {
        ops as f64 / stats.median_secs
    } else {
        0.0
    };
    Ok(BenchReport {
        schema: SCHEMA.to_owned(),
        scenario: id.to_owned(),
        kind: if is_micro { "micro" } else { "suite" }.to_owned(),
        reps,
        quick,
        ops,
        samples_secs: samples,
        stats,
        ops_per_sec_median,
    })
}

/// Path of a report's JSON file under `out_dir`.
pub fn report_path(out_dir: &Path, id: &str) -> PathBuf {
    out_dir.join(format!("BENCH_{id}.json"))
}

/// Serialize a report to `BENCH_<scenario>.json` under `out_dir`,
/// creating the directory if needed.
///
/// # Errors
///
/// I/O or serialization failure, as a human-readable message.
pub fn write_report(report: &BenchReport, out_dir: &Path) -> Result<PathBuf, String> {
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let path = report_path(out_dir, &report.scenario);
    let text =
        serde_json::to_string_pretty(report).map_err(|e| format!("serialize bench: {e:?}"))?;
    std::fs::write(&path, text + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// One scenario's old-vs-new wall-clock comparison (`bench --compare`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchDelta {
    /// Scenario id (identical in both reports).
    pub scenario: String,
    /// Reference (old) median, seconds.
    pub old_median_secs: f64,
    /// Candidate (new) median, seconds.
    pub new_median_secs: f64,
    /// `(new - old) / old * 100` — positive means the candidate is *slower*.
    pub delta_pct: f64,
    /// `old / new` — >1 means the candidate is faster.
    pub speedup: f64,
    /// `delta_pct > threshold` at the threshold passed to [`compare_reports`].
    pub regression: bool,
}

/// Load and schema-check a `BENCH_*.json` file.
///
/// # Errors
///
/// Unreadable file, malformed JSON, or a schema tag other than [`SCHEMA`].
pub fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let report: BenchReport = serde_json::from_str(&text)
        .map_err(|e| format!("{}: bad bench JSON: {e}", path.display()))?;
    if report.schema != SCHEMA {
        return Err(format!(
            "{}: schema `{}` is not `{SCHEMA}`",
            path.display(),
            report.schema
        ));
    }
    Ok(report)
}

/// Diff two bench reports of the same scenario. `threshold_pct` is the
/// slowdown (in percent of the old median) above which the delta counts as a
/// regression.
///
/// # Errors
///
/// Reports for different scenarios, or a non-positive old median.
pub fn compare_reports(
    old: &BenchReport,
    new: &BenchReport,
    threshold_pct: f64,
) -> Result<BenchDelta, String> {
    if old.scenario != new.scenario {
        return Err(format!(
            "cannot compare `{}` against `{}`: different scenarios",
            old.scenario, new.scenario
        ));
    }
    let (o, n) = (old.stats.median_secs, new.stats.median_secs);
    if o <= 0.0 || n <= 0.0 {
        return Err(format!("`{}`: non-positive median", old.scenario));
    }
    let delta_pct = (n - o) / o * 100.0;
    Ok(BenchDelta {
        scenario: old.scenario.clone(),
        old_median_secs: o,
        new_median_secs: n,
        delta_pct,
        speedup: o / n,
        regression: delta_pct > threshold_pct,
    })
}

/// [`load_report`] + [`compare_reports`] over two files.
///
/// # Errors
///
/// Any load or comparison failure, as a human-readable message.
pub fn compare_files(old: &Path, new: &Path, threshold_pct: f64) -> Result<BenchDelta, String> {
    compare_reports(&load_report(old)?, &load_report(new)?, threshold_pct)
}

/// Render comparison deltas as a GitHub-flavoured Markdown table
/// (`bench --compare ... --emit-md`).
pub fn deltas_to_markdown(deltas: &[BenchDelta]) -> String {
    let mut md = String::from(
        "| scenario | old median (s) | new median (s) | delta | speedup | verdict |\n\
         |---|---:|---:|---:|---:|---|\n",
    );
    for d in deltas {
        md.push_str(&format!(
            "| {} | {:.4} | {:.4} | {:+.1}% | {:.2}x | {} |\n",
            d.scenario,
            d.old_median_secs,
            d.new_median_secs,
            d.delta_pct,
            d.speedup,
            if d.regression { "regression" } else { "ok" }
        ));
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = BenchStats::from_samples(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.min_secs, 1.0);
        assert_eq!(s.max_secs, 4.0);
        assert_eq!(s.median_secs, 2.5);
        assert_eq!(s.mean_secs, 2.5);
        assert!((s.stddev_secs - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn micro_workloads_run_quick() {
        for id in micro_ids() {
            let report = run_bench(id, 1, true).expect("quick micro bench runs");
            assert_eq!(report.schema, SCHEMA);
            assert_eq!(report.kind, "micro");
            assert!(report.ops > 0);
            assert_eq!(report.samples_secs.len(), 1);
        }
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        assert!(run_bench("no_such_scenario", 1, true).is_err());
        assert!(run_bench("snapshot_churn", 0, true).is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_bench("create_churn", 1, true).expect("bench runs");
        let text = serde_json::to_string_pretty(&report).expect("serialize");
        let back: BenchReport = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn sim_hotpath_delivers_deterministic_op_count() {
        assert_eq!(run_sim_hotpath(true), 200_000);
    }

    #[test]
    fn sim_hotpath_mt_delivers_the_same_total() {
        // four lanes × 50k deliveries = the sequential quick budget
        assert_eq!(run_sim_hotpath_mt(true), 200_000);
    }

    #[test]
    fn stress_grid_completes_every_cell() {
        // quick grid: (4+16) workers × {1,4} servers × 3 mixes × 100 ops
        assert_eq!(run_stress_grid(true), (4 + 16) * 2 * 3 * 100);
    }

    #[test]
    fn stress_grid_mt_completes_every_cell() {
        assert_eq!(run_stress_grid_mt(true), (4 + 16) * 2 * 3 * 100);
    }

    #[test]
    fn partitionable_grid_cell_matches_classic_engine() {
        // the same cell through the classic engine and the windowed engine
        // (2 domains) must complete the same ops
        let classic = run_grid_cell(16, 4, "create", 50, false);
        cluster::set_sim_threads(Some(2));
        let windowed = run_grid_cell(16, 4, "create", 50, true);
        cluster::set_sim_threads(None);
        assert_eq!(classic, windowed);
    }

    fn fake_report(scenario: &str, median: f64) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_owned(),
            scenario: scenario.to_owned(),
            kind: "micro".to_owned(),
            reps: 1,
            quick: true,
            ops: 100,
            samples_secs: vec![median],
            stats: BenchStats::from_samples(&[median]),
            ops_per_sec_median: 100.0 / median,
        }
    }

    #[test]
    fn compare_flags_regressions_beyond_threshold() {
        let old = fake_report("x", 1.0);
        let slower = fake_report("x", 1.2);
        let d = compare_reports(&old, &slower, 10.0).expect("compare");
        assert!(d.regression);
        assert!((d.delta_pct - 20.0).abs() < 1e-9);
        assert!((d.speedup - 1.0 / 1.2).abs() < 1e-9);
        // within threshold: not a regression
        let d = compare_reports(&old, &slower, 25.0).expect("compare");
        assert!(!d.regression);
        // faster: negative delta, never a regression
        let faster = fake_report("x", 0.5);
        let d = compare_reports(&old, &faster, 10.0).expect("compare");
        assert!(!d.regression);
        assert!((d.speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn markdown_table_lists_each_delta() {
        let old = fake_report("grid", 2.0);
        let new = fake_report("grid", 1.0);
        let d = compare_reports(&old, &new, 10.0).expect("compare");
        let md = deltas_to_markdown(&[d]);
        assert!(md.starts_with("| scenario |"));
        assert!(md.contains("| grid | 2.0000 | 1.0000 | -50.0% | 2.00x | ok |"));
    }

    #[test]
    fn compare_rejects_mismatched_scenarios() {
        let a = fake_report("a", 1.0);
        let b = fake_report("b", 1.0);
        assert!(compare_reports(&a, &b, 10.0).is_err());
    }

    #[test]
    fn compare_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("dmb-compare-{}", std::process::id()));
        let old = fake_report("y", 2.0);
        let new = fake_report("y", 1.0);
        write_report(&old, &dir).expect("write old");
        let old_path = dir.join("BENCH_y.old.json");
        std::fs::rename(report_path(&dir, "y"), &old_path).expect("rename");
        write_report(&new, &dir).expect("write new");
        let d = compare_files(&old_path, &report_path(&dir, "y"), 5.0).expect("compare files");
        assert!((d.speedup - 2.0).abs() < 1e-9);
        assert!(!d.regression);
        assert!(load_report(Path::new("/no/such/file.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
