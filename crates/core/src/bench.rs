//! Wall-clock benchmark harness (`dmetabench bench`).
//!
//! Unlike the shape-regression suite, which runs on **virtual** time and is
//! bit-reproducible, this module measures **real** elapsed time so the repo
//! can record a perf trajectory across PRs. Each benched scenario is run
//! `reps` times after one untimed warmup, and the per-rep wall-clock samples
//! are summarized and written to `BENCH_<scenario>.json` (schema
//! [`SCHEMA`]).
//!
//! Two kinds of scenario are benchable:
//!
//! * **micro** workloads defined here — [`micro_ids`] — that hammer one
//!   subsystem directly. `snapshot_churn` is checkpoint/snapshot-heavy
//!   (it exercises the consistency-point image capture path, paper §4.8);
//!   `create_churn` is the identical metadata workload *without* any
//!   checkpoints, serving as the regression control.
//! * any registered **suite** scenario by id (`exp_4_8_writeback`, …),
//!   timed end to end.

use crate::suite;
use memfs::{MemFs, OpenFlags, Vfs};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema tag stamped into every emitted `BENCH_*.json`.
pub const SCHEMA: &str = "dmetabench.bench/v1";

/// Summary statistics over the per-rep wall-clock samples, in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchStats {
    /// Fastest rep.
    pub min_secs: f64,
    /// Median rep (the headline number — robust against one slow rep).
    pub median_secs: f64,
    /// Arithmetic mean.
    pub mean_secs: f64,
    /// Slowest rep.
    pub max_secs: f64,
    /// Population standard deviation.
    pub stddev_secs: f64,
}

impl BenchStats {
    /// Compute stats over one or more samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "bench needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        BenchStats {
            min_secs: sorted[0],
            median_secs: median,
            mean_secs: mean,
            max_secs: sorted[n - 1],
            stddev_secs: var.sqrt(),
        }
    }
}

/// One benched scenario's result — serialized as `BENCH_<scenario>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Scenario id (micro workload name or registered suite id).
    pub scenario: String,
    /// `"micro"` or `"suite"`.
    pub kind: String,
    /// Timed repetitions (after one untimed warmup).
    pub reps: u32,
    /// Whether the workload ran in reduced `--quick` geometry.
    pub quick: bool,
    /// Metadata operations per rep (0 for suite scenarios, which report
    /// their own op counts in the shape suite).
    pub ops: u64,
    /// Raw per-rep wall-clock samples, seconds, in run order.
    pub samples_secs: Vec<f64>,
    /// Summary statistics over `samples_secs`.
    pub stats: BenchStats,
    /// `ops / median_secs` (0.0 when `ops` is 0).
    pub ops_per_sec_median: f64,
}

/// Ids of the built-in micro workloads.
pub fn micro_ids() -> &'static [&'static str] {
    &["snapshot_churn", "create_churn"]
}

/// Geometry of the churn workloads.
struct ChurnGeometry {
    dirs: usize,
    files_per_dir: usize,
    rounds: usize,
    rewrites_per_round: usize,
    recreates_per_round: usize,
}

impl ChurnGeometry {
    fn new(quick: bool) -> Self {
        if quick {
            ChurnGeometry {
                dirs: 8,
                files_per_dir: 32,
                rounds: 3,
                rewrites_per_round: 64,
                recreates_per_round: 16,
            }
        } else {
            ChurnGeometry {
                dirs: 16,
                files_per_dir: 128,
                rounds: 8,
                rewrites_per_round: 256,
                recreates_per_round: 64,
            }
        }
    }
}

/// How many snapshots the churn workload keeps live (WAFL keeps a small
/// rotating set of consistency points).
const SNAPSHOT_KEEP: usize = 4;

/// Run the churn workload; with `snapshots` each round ends in a
/// consistency point (`checkpoint()` + `snapshot_create()` with rotation).
/// Returns the number of metadata operations performed.
fn run_churn(quick: bool, snapshots: bool) -> u64 {
    let g = ChurnGeometry::new(quick);
    let payload = vec![0xa5u8; 4096]; // > inline_max: engages the allocator
    let mut fs = MemFs::new();
    let mut ops: u64 = 0;
    for d in 0..g.dirs {
        fs.mkdir(&format!("/d{d}")).expect("mkdir");
        ops += 1;
        for f in 0..g.files_per_dir {
            let path = format!("/d{d}/f{f}");
            let fd = fs.create(&path).expect("create");
            fs.write(fd, &payload).expect("write");
            fs.close(fd).expect("close");
            ops += 3;
        }
    }
    let total_files = g.dirs * g.files_per_dir;
    for round in 0..g.rounds {
        for k in 0..g.rewrites_per_round {
            let idx = (round * g.rewrites_per_round + k * 7) % total_files;
            let path = format!("/d{}/f{}", idx / g.files_per_dir, idx % g.files_per_dir);
            let fd = fs.open(&path, OpenFlags::write_only()).expect("open");
            fs.write(fd, &payload).expect("rewrite");
            fs.close(fd).expect("close");
            ops += 3;
        }
        for k in 0..g.recreates_per_round {
            let idx = (round * g.recreates_per_round + k * 11) % total_files;
            let path = format!("/d{}/f{}", idx / g.files_per_dir, idx % g.files_per_dir);
            fs.unlink(&path).expect("unlink");
            let fd = fs.create(&path).expect("recreate");
            fs.write(fd, &payload).expect("write");
            fs.close(fd).expect("close");
            ops += 4;
        }
        if snapshots {
            fs.checkpoint();
            fs.snapshot_create(&format!("cp{round}")).expect("snapshot");
            ops += 2;
            if round >= SNAPSHOT_KEEP {
                fs.snapshot_delete(&format!("cp{}", round - SNAPSHOT_KEEP))
                    .expect("rotate");
                ops += 1;
            }
        }
    }
    ops
}

/// Run one benchable scenario once; returns the op count (0 for suite
/// scenarios).
///
/// # Errors
///
/// Unknown id, or a suite scenario that panics.
fn run_once(id: &str) -> Result<u64, String> {
    match id {
        "snapshot_churn" => Ok(run_churn(false, true)),
        "create_churn" => Ok(run_churn(false, false)),
        _ => {
            let scenario =
                suite::find(id).ok_or_else(|| format!("unknown bench scenario `{id}`"))?;
            let result = suite::run_scenario(scenario);
            result.outcome.map(|_| 0).map_err(|e| format!("{id}: {e}"))
        }
    }
}

/// Quick-mode variant of [`run_once`].
fn run_once_quick(id: &str) -> Result<u64, String> {
    match id {
        "snapshot_churn" => Ok(run_churn(true, true)),
        "create_churn" => Ok(run_churn(true, false)),
        _ => run_once(id),
    }
}

/// Bench one scenario: one untimed warmup, then `reps` timed runs.
///
/// # Errors
///
/// Unknown scenario id, `reps == 0`, or a failing suite scenario.
pub fn run_bench(id: &str, reps: u32, quick: bool) -> Result<BenchReport, String> {
    if reps == 0 {
        return Err("reps must be >= 1".to_owned());
    }
    let is_micro = micro_ids().contains(&id);
    if !is_micro && suite::find(id).is_none() {
        return Err(format!(
            "unknown bench scenario `{id}` (micro: {}; or any suite id)",
            micro_ids().join(", ")
        ));
    }
    let run = if quick { run_once_quick } else { run_once };
    let mut ops = run(id)?; // warmup
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let t0 = Instant::now();
        ops = run(id)?;
        samples.push(t0.elapsed().as_secs_f64());
    }
    let stats = BenchStats::from_samples(&samples);
    let ops_per_sec_median = if ops > 0 && stats.median_secs > 0.0 {
        ops as f64 / stats.median_secs
    } else {
        0.0
    };
    Ok(BenchReport {
        schema: SCHEMA.to_owned(),
        scenario: id.to_owned(),
        kind: if is_micro { "micro" } else { "suite" }.to_owned(),
        reps,
        quick,
        ops,
        samples_secs: samples,
        stats,
        ops_per_sec_median,
    })
}

/// Path of a report's JSON file under `out_dir`.
pub fn report_path(out_dir: &Path, id: &str) -> PathBuf {
    out_dir.join(format!("BENCH_{id}.json"))
}

/// Serialize a report to `BENCH_<scenario>.json` under `out_dir`,
/// creating the directory if needed.
///
/// # Errors
///
/// I/O or serialization failure, as a human-readable message.
pub fn write_report(report: &BenchReport, out_dir: &Path) -> Result<PathBuf, String> {
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let path = report_path(out_dir, &report.scenario);
    let text =
        serde_json::to_string_pretty(report).map_err(|e| format!("serialize bench: {e:?}"))?;
    std::fs::write(&path, text + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = BenchStats::from_samples(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.min_secs, 1.0);
        assert_eq!(s.max_secs, 4.0);
        assert_eq!(s.median_secs, 2.5);
        assert_eq!(s.mean_secs, 2.5);
        assert!((s.stddev_secs - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn micro_workloads_run_quick() {
        for id in micro_ids() {
            let report = run_bench(id, 1, true).expect("quick micro bench runs");
            assert_eq!(report.schema, SCHEMA);
            assert_eq!(report.kind, "micro");
            assert!(report.ops > 0);
            assert_eq!(report.samples_secs.len(), 1);
        }
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        assert!(run_bench("no_such_scenario", 1, true).is_err());
        assert!(run_bench("snapshot_churn", 0, true).is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_bench("create_churn", 1, true).expect("bench runs");
        let text = serde_json::to_string_pretty(&report).expect("serialize");
        let back: BenchReport = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, report);
    }
}
