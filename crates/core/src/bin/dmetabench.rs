//! The `dmetabench` command-line tool — the Rust counterpart of the paper's
//! `mpirun -np 15 dmetabench.py --ppnstep=5 --problemsize=10000
//! --operations MakeFile,StatFiles --workdir=... --label=...` invocation
//! (listing 3.2).
//!
//! Simulated mode stands in for the MPI launch: `--nodes`/`--slots-per-node`
//! describe the world, `--fs` picks the distributed-file-system model.
//! Real mode (`--mode real`) drives actual file-system syscalls on
//! `--workdir` with worker threads.

use cluster::{MpiWorld, Placement, SimConfig, ThreadRunConfig};
use dfs::{AfsFs, CxfsFs, DistFs, LocalFs, LustreFs, NfsFs, OntapGxFs};
use dmetabench::{all_plugin_names, BenchParams, Runner};
use simcore::SimDuration;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dmetabench — distributed metadata benchmark (Rust reproduction)

USAGE:
  dmetabench [OPTIONS]

OPTIONS:
  --mode <sim|real>          execution mode               [default: sim]
  --fs <MODEL>               sim model: nfs, lustre, cxfs, ontapgx, afs,
                             local                        [default: nfs]
  --nodes <N>                simulated nodes              [default: 4]
  --slots-per-node <N>       simulated MPI slots per node [default: 2]
  --operations <A,B,...>     comma-separated plugin list  [default: MakeFiles]
  --problemsize <N>          per-process problem size     [default: 5000]
  --duration <SECONDS>       timed-benchmark duration     [default: 60]
  --workdir <PATH>           working directory            [default: /bench]
  --pathlist <P1,P2,...>     per-process path list (overrides workdir layout)
  --nodestep <N>             node count step              [default: 1]
  --ppnstep <N>              processes-per-node step      [default: 1]
  --label <TEXT>             result label                 [default: cli-run]
  --output <DIR>             write result files here
  --threads <N>              real mode: max worker threads [default: 4]
  --list-operations          print available plugins and exit
  --help                     print this help

EXAMPLES:
  dmetabench --fs lustre --nodes 8 --operations MakeFiles,StatFiles
  dmetabench --mode real --workdir /mnt/nfs/testdir --threads 8 \\
             --operations MakeFiles --duration 10 --output ./results
";

struct Cli {
    mode: String,
    fs: String,
    nodes: usize,
    slots_per_node: usize,
    threads: usize,
    output: Option<PathBuf>,
    params: BenchParams,
}

fn parse_args() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        mode: "sim".into(),
        fs: "nfs".into(),
        nodes: 4,
        slots_per_node: 2,
        threads: 4,
        output: None,
        params: BenchParams {
            label: "cli-run".into(),
            ..BenchParams::default()
        },
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-operations" => {
                for name in all_plugin_names() {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--mode" => cli.mode = value("--mode")?,
            "--fs" => cli.fs = value("--fs")?,
            "--nodes" => {
                cli.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--slots-per-node" => {
                cli.slots_per_node = value("--slots-per-node")?
                    .parse()
                    .map_err(|e| format!("--slots-per-node: {e}"))?
            }
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--operations" => {
                cli.params.operations = value("--operations")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--problemsize" => {
                cli.params.problem_size = value("--problemsize")?
                    .parse()
                    .map_err(|e| format!("--problemsize: {e}"))?
            }
            "--duration" => {
                let secs: f64 = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
                cli.params.duration = SimDuration::from_secs_f64(secs);
            }
            "--workdir" => cli.params.workdir = value("--workdir")?,
            "--pathlist" => {
                cli.params.path_list = Some(
                    value("--pathlist")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .collect(),
                );
            }
            "--nodestep" => {
                cli.params.node_step = value("--nodestep")?
                    .parse()
                    .map_err(|e| format!("--nodestep: {e}"))?
            }
            "--ppnstep" => {
                cli.params.ppn_step = value("--ppnstep")?
                    .parse()
                    .map_err(|e| format!("--ppnstep: {e}"))?
            }
            "--label" => cli.params.label = value("--label")?,
            "--output" => cli.output = Some(PathBuf::from(value("--output")?)),
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    for op in &cli.params.operations {
        if dmetabench::plugin_by_name(op).is_none() {
            return Err(format!(
                "unknown operation '{op}' (try --list-operations)"
            ));
        }
    }
    Ok(Some(cli))
}

fn model_factory(fs: &str) -> Result<Box<dyn Fn() -> Box<dyn DistFs>>, String> {
    let f: Box<dyn Fn() -> Box<dyn DistFs>> = match fs {
        "nfs" => Box::new(|| Box::new(NfsFs::with_defaults())),
        "lustre" => Box::new(|| Box::new(LustreFs::with_defaults())),
        "cxfs" => Box::new(|| Box::new(CxfsFs::with_defaults())),
        "ontapgx" => Box::new(|| Box::new(OntapGxFs::with_defaults())),
        "afs" => Box::new(|| Box::new(AfsFs::with_defaults())),
        "local" => Box::new(|| Box::new(LocalFs::with_defaults())),
        other => return Err(format!("unknown --fs '{other}'")),
    };
    Ok(f)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let campaign = match cli.mode.as_str() {
        "sim" => {
            let factory = match model_factory(&cli.fs) {
                Ok(f) => f,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::FAILURE;
                }
            };
            // volume-addressed models need volume-prefixed directories
            let mut params = cli.params.clone();
            if matches!(cli.fs.as_str(), "ontapgx" | "afs") && params.path_list.is_none() {
                params.workdir = format!("/vol0{}", params.workdir);
            }
            let world = MpiWorld::uniform(cli.nodes, cli.slots_per_node);
            let placement = Placement::discover(&world);
            eprintln!(
                "simulated world: {} nodes x {} slots, model '{}', master rank {}",
                cli.nodes, cli.slots_per_node, cli.fs, placement.master_rank
            );
            Runner::new(params).run_simulated(&placement, factory, &SimConfig::default())
        }
        "real" => {
            let workdir = cli.params.workdir.clone();
            eprintln!(
                "real mode: up to {} worker threads on {}",
                cli.threads, workdir
            );
            let mut params = cli.params.clone();
            // StdFs jails paths under its root; plugins see "/"
            params.workdir = "/".into();
            Runner::new(params).run_real(
                move |_| {
                    Box::new(
                        memfs::StdFs::new(&workdir)
                            .expect("working directory must be creatable/writable"),
                    )
                },
                cli.threads,
                &ThreadRunConfig::default(),
            )
        }
        other => {
            eprintln!("error: unknown --mode '{other}'");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", campaign.summary_tsv());
    if let Some(dir) = cli.output {
        if let Err(e) = campaign.write_to_dir(&dir) {
            eprintln!("error: cannot write results to {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        eprintln!("results written to {}", dir.display());
    }
    ExitCode::SUCCESS
}
