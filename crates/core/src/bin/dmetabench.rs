//! The `dmetabench` command-line tool — the Rust counterpart of the paper's
//! `mpirun -np 15 dmetabench.py --ppnstep=5 --problemsize=10000
//! --operations MakeFile,StatFiles --workdir=... --label=...` invocation
//! (listing 3.2).
//!
//! Simulated mode stands in for the MPI launch: `--nodes`/`--slots-per-node`
//! describe the world, `--fs` picks the distributed-file-system model.
//! Real mode (`--mode real`) drives actual file-system syscalls on
//! `--workdir` with worker threads.

use cluster::{MpiWorld, Placement, SimConfig, ThreadRunConfig};
use dfs::{AfsFs, CxfsFs, DistFs, LocalFs, LustreFs, NfsFs, OntapGxFs, ShardMds, ShardMdsConfig};
use dmetabench::{
    all_plugin_names, analyze, baseline, bench, crashdrill, suite, BenchParams, Runner,
};
use memfs::crash::CrashSpec;
use netsim::fault::FaultSpec;
use simcore::SimDuration;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dmetabench — distributed metadata benchmark (Rust reproduction)

USAGE:
  dmetabench [OPTIONS]
  dmetabench suite [SUITE OPTIONS]    run the experiment shape-regression suite
  dmetabench bench [BENCH OPTIONS]    wall-clock benchmark, emits BENCH_<id>.json
  dmetabench analyze <ID...> [ANALYZE OPTIONS]
                                      re-run scenarios with causal tracing and
                                      report the critical-path breakdown

ANALYZE OPTIONS:
  --scenario <ID>            analyze scenario ID (same as a positional ID;
                             may be repeated)
  --out <DIR>                write <id>.critpath.json, <id>.timeseries.json
                             and <id>.report.md into DIR (created if missing)
  --md                       print the full Markdown report to stdout
  --top <N>                  keep the N slowest chains        [default: 10]
  (set DMETABENCH_PROF=1 to also print a wall-clock profile of the
  scheduler/event hot path — diagnostic only, never affects traces)

BENCH OPTIONS:
  --scenarios <A,B,...>      micro workloads (snapshot_churn, create_churn,
                             sim_hotpath, sim_hotpath_mt, stress_grid,
                             stress_grid_mt) or suite ids
                                      [default: snapshot_churn,create_churn]
  --reps <N>                 timed repetitions after one warmup   [default: 5]
  --quick                    reduced workload geometry (CI smoke)
  --sim-threads <N>          OS threads for the _mt micros and for
                             partitionable simulated runs (windowed engine;
                             results bit-identical at any N)
  --out <DIR>                directory for BENCH_<id>.json        [default: .]
  --list                     list benchable scenarios and exit
  --compare <OLD> <NEW>      diff two BENCH_*.json files (same scenario) and
                             print the median delta instead of running
                             anything; may be repeated; exits non-zero on
                             regression
  --emit-md <PATH>           with --compare: also write the deltas as a
                             Markdown table to PATH
  --threshold <PCT>          slowdown (%) that counts as a regression
                             for --compare                       [default: 10]
  --informational            with --compare: report the delta but always
                             exit 0 (for noisy shared CI runners)

SUITE OPTIONS:
  --filter <SUBSTR>          only scenarios whose id contains SUBSTR
  --jobs <N>                 worker threads          [default: available cores]
  --sim-threads <N>          OS threads for partitionable simulated runs
                             (conservative windowed engine; results are
                             bit-identical at any N — blessed baselines and
                             goldens do not change)
  --bless                    rewrite baselines/*.json from this run
  --emit-md <PATH>           regenerate EXPERIMENTS.md at PATH
  --list                     list registered scenarios and exit
  --trace-out <DIR>          write per-scenario Chrome traces (<id>.trace.json,
                             Perfetto-loadable) and metrics summaries
                             (<id>.metrics.json) into DIR
  --metrics                  print each scenario's metrics summary JSON

OPTIONS:
  --mode <sim|real>          execution mode               [default: sim]
  --fs <MODEL>               sim model: nfs, lustre, cxfs, ontapgx, afs,
                             shardmds, local              [default: nfs]
  --mds-shards <N>           shardmds only: metadata-server shard count
                             (hash placement)             [default: 4]
  --faults <SPEC>            sim fault schedule (nfs/lustre/afs/shardmds):
                             comma-separated down@A..B, degrade@A..B:Fx,
                             loss@A..B:P, crash:S@T+D, seed=N; times accept
                             s/ms/us/ns suffixes (bare numbers = seconds)
  --crash <SPEC>             run a power-loss drill on the in-memory journal
                             instead of a benchmark: comma-separated
                             crash-after:N-records, torn:last, reorder:K,
                             seed=N. Runs --problemsize scripted steps,
                             cuts power, recovers, then checks prefix
                             durability + fsck + scrub (nonzero exit on
                             failure); ignores --fs/--mode
  --nodes <N>                simulated nodes              [default: 4]
  --slots-per-node <N>       simulated MPI slots per node [default: 2]
  --operations <A,B,...>     comma-separated plugin list  [default: MakeFiles]
  --problemsize <N>          per-process problem size     [default: 5000]
  --duration <SECONDS>       timed-benchmark duration     [default: 60]
  --workdir <PATH>           working directory            [default: /bench]
  --pathlist <P1,P2,...>     per-process path list (overrides workdir layout)
  --nodestep <N>             node count step              [default: 1]
  --ppnstep <N>              processes-per-node step      [default: 1]
  --label <TEXT>             result label                 [default: cli-run]
  --output <DIR>             write result files here
  --threads <N>              real mode: max worker threads [default: 4]
  --sim-threads <N>          sim mode: OS threads for partitionable models
                             (conservative windowed engine, bit-identical
                             results at any N; non-partitionable models run
                             the classic sequential engine regardless)
  --trace-out <DIR>          write a Chrome trace (<label>.trace.json) and a
                             metrics summary (<label>.metrics.json) into DIR
  --metrics                  print the run's metrics summary JSON
  --list-operations          print available plugins and exit
  --help                     print this help

EXAMPLES:
  dmetabench --fs lustre --nodes 8 --operations MakeFiles,StatFiles
  dmetabench --mode real --workdir /mnt/nfs/testdir --threads 8 \\
             --operations MakeFiles --duration 10 --output ./results
";

struct Cli {
    mode: String,
    fs: String,
    mds_shards: Option<usize>,
    faults: Option<FaultSpec>,
    crash: Option<CrashSpec>,
    nodes: usize,
    slots_per_node: usize,
    threads: usize,
    output: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics: bool,
    params: BenchParams,
}

/// Parse a `--sim-threads` value and apply it process-wide.
fn set_sim_threads_arg(raw: &str) -> Result<(), String> {
    let n: usize = raw.parse().map_err(|e| format!("--sim-threads: {e}"))?;
    if n == 0 {
        return Err("--sim-threads must be at least 1".into());
    }
    cluster::set_sim_threads(Some(n));
    Ok(())
}

fn parse_args() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        mode: "sim".into(),
        fs: "nfs".into(),
        mds_shards: None,
        faults: None,
        crash: None,
        nodes: 4,
        slots_per_node: 2,
        threads: 4,
        output: None,
        trace_out: None,
        metrics: false,
        params: BenchParams {
            label: "cli-run".into(),
            ..BenchParams::default()
        },
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-operations" => {
                for name in all_plugin_names() {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--mode" => cli.mode = value("--mode")?,
            "--fs" => cli.fs = value("--fs")?,
            "--mds-shards" => {
                let n: usize = value("--mds-shards")?
                    .parse()
                    .map_err(|e| format!("--mds-shards: {e}"))?;
                if n == 0 {
                    return Err("--mds-shards must be at least 1".into());
                }
                cli.mds_shards = Some(n);
            }
            "--faults" => {
                cli.faults = Some(
                    FaultSpec::parse(&value("--faults")?).map_err(|e| format!("--faults: {e}"))?,
                )
            }
            "--crash" => {
                cli.crash = Some(
                    CrashSpec::parse(&value("--crash")?).map_err(|e| format!("--crash: {e}"))?,
                )
            }
            "--nodes" => {
                cli.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--slots-per-node" => {
                cli.slots_per_node = value("--slots-per-node")?
                    .parse()
                    .map_err(|e| format!("--slots-per-node: {e}"))?
            }
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--sim-threads" => set_sim_threads_arg(&value("--sim-threads")?)?,
            "--operations" => {
                cli.params.operations = value("--operations")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--problemsize" => {
                cli.params.problem_size = value("--problemsize")?
                    .parse()
                    .map_err(|e| format!("--problemsize: {e}"))?
            }
            "--duration" => {
                let secs: f64 = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
                cli.params.duration = SimDuration::from_secs_f64(secs);
            }
            "--workdir" => cli.params.workdir = value("--workdir")?,
            "--pathlist" => {
                cli.params.path_list = Some(
                    value("--pathlist")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .collect(),
                );
            }
            "--nodestep" => {
                cli.params.node_step = value("--nodestep")?
                    .parse()
                    .map_err(|e| format!("--nodestep: {e}"))?
            }
            "--ppnstep" => {
                cli.params.ppn_step = value("--ppnstep")?
                    .parse()
                    .map_err(|e| format!("--ppnstep: {e}"))?
            }
            "--label" => cli.params.label = value("--label")?,
            "--output" => cli.output = Some(PathBuf::from(value("--output")?)),
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--metrics" => cli.metrics = true,
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    for op in &cli.params.operations {
        if dmetabench::plugin_by_name(op).is_none() {
            return Err(format!("unknown operation '{op}' (try --list-operations)"));
        }
    }
    if cli.mds_shards.is_some() && cli.fs != "shardmds" {
        return Err("--mds-shards only applies to --fs shardmds".into());
    }
    Ok(Some(cli))
}

fn model_factory(
    fs: &str,
    faults: Option<&FaultSpec>,
    mds_shards: Option<usize>,
) -> Result<Box<dyn Fn() -> Box<dyn DistFs>>, String> {
    // Each model instance compiles its own plan from the shared spec so
    // every run gets an identical, independently-seeded loss stream.
    let spec = faults.cloned();
    let f: Box<dyn Fn() -> Box<dyn DistFs>> = match fs {
        "nfs" => Box::new(move || {
            let mut m = NfsFs::with_defaults();
            if let Some(spec) = &spec {
                m.set_faults(spec.build());
            }
            Box::new(m)
        }),
        "lustre" => Box::new(move || {
            let mut m = LustreFs::with_defaults();
            if let Some(spec) = &spec {
                m.set_faults(spec.build());
            }
            Box::new(m)
        }),
        "afs" => Box::new(move || {
            let mut m = AfsFs::with_defaults();
            if let Some(spec) = &spec {
                m.set_faults(spec.build());
            }
            Box::new(m)
        }),
        "shardmds" => {
            let shards = mds_shards.unwrap_or(4);
            Box::new(move || {
                let mut m = ShardMds::new(ShardMdsConfig {
                    shards,
                    ..ShardMdsConfig::default()
                });
                if let Some(spec) = &spec {
                    m.set_faults(spec.build());
                }
                Box::new(m)
            })
        }
        "cxfs" | "ontapgx" | "local" if faults.is_some() => {
            return Err(format!("--faults is not supported for --fs '{fs}'"))
        }
        "cxfs" => Box::new(|| Box::new(CxfsFs::with_defaults())),
        "ontapgx" => Box::new(|| Box::new(OntapGxFs::with_defaults())),
        "local" => Box::new(|| Box::new(LocalFs::with_defaults())),
        other => return Err(format!("unknown --fs '{other}'")),
    };
    Ok(f)
}

struct SuiteCli {
    filter: Option<String>,
    jobs: usize,
    bless: bool,
    emit_md: Option<PathBuf>,
    list: bool,
    trace_out: Option<PathBuf>,
    metrics: bool,
}

fn parse_suite_args(args: &[String]) -> Result<Option<SuiteCli>, String> {
    let mut cli = SuiteCli {
        filter: None,
        jobs: suite::default_jobs(),
        bless: false,
        emit_md: None,
        list: false,
        trace_out: None,
        metrics: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--filter" => cli.filter = Some(value("--filter")?),
            "--jobs" => {
                cli.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if cli.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--bless" => cli.bless = true,
            "--emit-md" => cli.emit_md = Some(PathBuf::from(value("--emit-md")?)),
            "--list" => cli.list = true,
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--metrics" => cli.metrics = true,
            "--sim-threads" => set_sim_threads_arg(&value("--sim-threads")?)?,
            other => return Err(format!("unknown suite option '{other}' (try --help)")),
        }
    }
    Ok(Some(cli))
}

fn suite_main(args: &[String]) -> ExitCode {
    let cli = match parse_suite_args(args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios: Vec<&'static suite::Scenario> = suite::registry()
        .iter()
        .filter(|s| {
            cli.filter
                .as_deref()
                .map(|f| s.id.contains(f))
                .unwrap_or(true)
        })
        .collect();
    if scenarios.is_empty() {
        eprintln!(
            "error: no scenario id contains '{}'",
            cli.filter.as_deref().unwrap_or("")
        );
        return ExitCode::FAILURE;
    }
    if cli.list {
        for s in &scenarios {
            println!(
                "{:24} {:10} {:8} {}",
                s.id,
                s.paper_ref,
                if s.deterministic { "sim" } else { "wallclock" },
                s.title
            );
        }
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "running {} scenario(s) on {} thread(s)...",
        scenarios.len(),
        cli.jobs
    );
    let traced = cli.trace_out.is_some() || cli.metrics;
    let run = if traced {
        suite::run_suite_traced(&scenarios, cli.jobs)
    } else {
        suite::run_suite(&scenarios, cli.jobs)
    };

    if let Some(dir) = &cli.trace_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for result in &run.results {
        let Some(telemetry) = &result.telemetry else {
            continue;
        };
        if let Some(dir) = &cli.trace_out {
            let trace_path = dir.join(format!("{}.trace.json", result.scenario.id));
            let metrics_path = dir.join(format!("{}.metrics.json", result.scenario.id));
            for (path, content) in [
                (&trace_path, telemetry.to_chrome_trace_json()),
                (&metrics_path, telemetry.to_metrics_json()),
            ] {
                if let Err(e) = std::fs::write(path, content) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            eprintln!("[trace] {}", trace_path.display());
        }
        if cli.metrics {
            println!("=== {} metrics ===", result.scenario.id);
            println!("{}", telemetry.to_metrics_json());
        }
    }

    let mut failures = 0usize;
    for result in &run.results {
        let s = result.scenario;
        let status = match &result.outcome {
            Err(msg) => {
                failures += 1;
                format!("PANIC    {msg}")
            }
            Ok(output) => {
                for a in &output.artifacts {
                    let path = suite::out_dir().join(&a.name);
                    if let Err(e) = std::fs::write(&path, &a.content) {
                        eprintln!("warning: cannot write {}: {e}", path.display());
                    }
                }
                let failed_checks = output.report.checks.iter().filter(|c| !c.passed).count();
                if failed_checks > 0 {
                    failures += 1;
                    format!("CHECKS   {failed_checks} shape check(s) failed")
                } else if cli.bless {
                    match baseline::save(&output.report) {
                        Ok(path) => format!("BLESSED  {}", path.display()),
                        Err(e) => {
                            failures += 1;
                            format!("ERROR    cannot write baseline: {e}")
                        }
                    }
                } else {
                    match baseline::load(s.id) {
                        Err(e) => {
                            failures += 1;
                            format!("ERROR    cannot read baseline: {e}")
                        }
                        Ok(None) => {
                            failures += 1;
                            "MISSING  no baseline (run with --bless)".to_owned()
                        }
                        Ok(Some(expected)) => match baseline::compare(&expected, &output.report) {
                            baseline::BaselineStatus::Match => "ok".to_owned(),
                            status => {
                                failures += 1;
                                let mut msg = "MISMATCH".to_owned();
                                if let baseline::BaselineStatus::Mismatch(reasons) = status {
                                    for r in reasons {
                                        msg.push_str(&format!("\n           - {r}"));
                                    }
                                }
                                msg
                            }
                        },
                    }
                }
            }
        };
        println!("{:24} {:>7.2}s  {status}", s.id, result.wall_secs);
    }
    println!(
        "\n{} scenario(s) in {:.2}s wall ({:.2}s serial, {:.2}x speedup on {} thread(s)); {} failure(s)",
        run.results.len(),
        run.wall_secs,
        run.serial_secs(),
        run.serial_secs() / run.wall_secs.max(1e-9),
        cli.jobs,
        failures
    );

    if let Some(path) = &cli.emit_md {
        if cli.filter.is_some() {
            eprintln!("warning: --emit-md with --filter writes a partial EXPERIMENTS.md");
        }
        match std::fs::write(path, suite::emit_markdown(&run)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

struct AnalyzeCli {
    ids: Vec<String>,
    out: Option<PathBuf>,
    md: bool,
    top: usize,
}

fn parse_analyze_args(args: &[String]) -> Result<Option<AnalyzeCli>, String> {
    let mut cli = AnalyzeCli {
        ids: Vec::new(),
        out: None,
        md: false,
        top: 10,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--scenario" => cli.ids.push(value("--scenario")?),
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--md" => cli.md = true,
            "--top" => cli.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            other if !other.starts_with('-') => cli.ids.push(other.to_owned()),
            other => return Err(format!("unknown analyze option '{other}' (try --help)")),
        }
    }
    if cli.ids.is_empty() {
        return Err("analyze needs at least one scenario id (try `suite --list`)".into());
    }
    Ok(Some(cli))
}

fn analyze_main(args: &[String]) -> ExitCode {
    let cli = match parse_analyze_args(args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let prof_on = simcore::prof::init_from_env();
    if let Some(dir) = &cli.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut failures = 0usize;
    for id in &cli.ids {
        let Some(scenario) = suite::find(id) else {
            eprintln!("error: unknown scenario '{id}' (try `suite --list`)");
            failures += 1;
            continue;
        };
        eprintln!("analyzing {id} (causal tracing on)...");
        let result = suite::run_scenario_traced(scenario);
        if let Err(msg) = &result.outcome {
            eprintln!("error: {id} panicked: {msg}");
            failures += 1;
            continue;
        }
        let Some(telemetry) = &result.telemetry else {
            eprintln!("error: {id} produced no telemetry");
            failures += 1;
            continue;
        };
        let analysis = analyze::analyze(telemetry, cli.top);
        if !analysis.consistency.consistent {
            eprintln!(
                "error: {id}: segment attribution inconsistent: {:?}",
                analysis.consistency
            );
            failures += 1;
        }
        if let Some(dir) = &cli.out {
            for (suffix, content) in [
                ("critpath.json", analysis.to_json(id)),
                ("timeseries.json", telemetry.to_timeseries_json()),
                ("report.md", analysis.to_markdown(id)),
            ] {
                let path = dir.join(format!("{id}.{suffix}"));
                if let Err(e) = std::fs::write(&path, content) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("[analyze] {}", path.display());
            }
        }
        if cli.md {
            print!("{}", analysis.to_markdown(id));
        } else {
            let cons = &analysis.consistency;
            let total_ms = analysis.dur_total_ns as f64 / 1e6;
            println!(
                "{id}: {} op(s), {total_ms:.3} ms total latency ({})",
                cons.records,
                if cons.consistent {
                    "segments consistent"
                } else {
                    "INCONSISTENT"
                }
            );
            for (seg, v) in analyze::SEGMENTS.iter().zip(analysis.totals) {
                let share = if analysis.dur_total_ns == 0 {
                    0.0
                } else {
                    v as f64 * 100.0 / analysis.dur_total_ns as f64
                };
                println!("  {seg:8} {:>12.3} ms  {share:>5.1}%", v as f64 / 1e6);
            }
        }
    }
    if prof_on {
        eprint!("{}", simcore::prof::report());
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

struct BenchCli {
    scenarios: Vec<String>,
    reps: u32,
    quick: bool,
    out: PathBuf,
    list: bool,
    compare: Vec<(PathBuf, PathBuf)>,
    emit_md: Option<PathBuf>,
    threshold_pct: f64,
    informational: bool,
}

fn parse_bench_args(args: &[String]) -> Result<Option<BenchCli>, String> {
    let mut cli = BenchCli {
        scenarios: vec!["snapshot_churn".to_owned(), "create_churn".to_owned()],
        reps: 5,
        quick: false,
        out: PathBuf::from("."),
        list: false,
        compare: Vec::new(),
        emit_md: None,
        threshold_pct: 10.0,
        informational: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--scenarios" => {
                cli.scenarios = value("--scenarios")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cli.scenarios.is_empty() {
                    return Err("--scenarios needs at least one id".into());
                }
            }
            "--reps" => {
                cli.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if cli.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--quick" => cli.quick = true,
            "--out" => cli.out = PathBuf::from(value("--out")?),
            "--list" => cli.list = true,
            "--sim-threads" => set_sim_threads_arg(&value("--sim-threads")?)?,
            "--compare" => {
                let old = PathBuf::from(value("--compare")?);
                let new = PathBuf::from(
                    it.next()
                        .cloned()
                        .ok_or("--compare needs two files: <OLD> <NEW>")?,
                );
                cli.compare.push((old, new));
            }
            "--emit-md" => cli.emit_md = Some(PathBuf::from(value("--emit-md")?)),
            "--threshold" => {
                cli.threshold_pct = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !cli.threshold_pct.is_finite() || cli.threshold_pct < 0.0 {
                    return Err("--threshold must be a non-negative percentage".into());
                }
            }
            "--informational" => cli.informational = true,
            other => return Err(format!("unknown bench option '{other}' (try --help)")),
        }
    }
    Ok(Some(cli))
}

fn bench_main(args: &[String]) -> ExitCode {
    let cli = match parse_bench_args(args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if cli.list {
        for id in bench::micro_ids() {
            println!("{id:24} micro");
        }
        for s in suite::registry() {
            println!("{:24} suite", s.id);
        }
        return ExitCode::SUCCESS;
    }
    if !cli.compare.is_empty() {
        let mut deltas = Vec::with_capacity(cli.compare.len());
        for (old, new) in &cli.compare {
            let delta = match bench::compare_files(old, new, cli.threshold_pct) {
                Ok(d) => d,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{:24} median {:>9.4}s -> {:>9.4}s  {:+.1}% ({:.2}x)  {}",
                delta.scenario,
                delta.old_median_secs,
                delta.new_median_secs,
                delta.delta_pct,
                delta.speedup,
                if delta.regression { "REGRESSION" } else { "ok" }
            );
            deltas.push(delta);
        }
        if let Some(path) = &cli.emit_md {
            if let Err(msg) = std::fs::write(path, bench::deltas_to_markdown(&deltas)) {
                eprintln!("error: cannot write {}: {msg}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
        let regressions: Vec<&str> = deltas
            .iter()
            .filter(|d| d.regression)
            .map(|d| d.scenario.as_str())
            .collect();
        if !regressions.is_empty() && !cli.informational {
            eprintln!(
                "error: regression(s) beyond {:.1}% threshold: {}",
                cli.threshold_pct,
                regressions.join(", ")
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let mut failures = 0usize;
    for id in &cli.scenarios {
        eprintln!(
            "benching {id} ({} rep(s){})...",
            cli.reps,
            if cli.quick { ", quick" } else { "" }
        );
        match bench::run_bench(id, cli.reps, cli.quick) {
            Err(msg) => {
                failures += 1;
                eprintln!("error: {msg}");
            }
            Ok(report) => match bench::write_report(&report, &cli.out) {
                Err(msg) => {
                    failures += 1;
                    eprintln!("error: {msg}");
                }
                Ok(path) => {
                    println!(
                        "{:24} median {:>9.4}s  (min {:.4}s, max {:.4}s, {} ops)  -> {}",
                        report.scenario,
                        report.stats.median_secs,
                        report.stats.min_secs,
                        report.stats.max_secs,
                        report.ops,
                        path.display()
                    );
                }
            },
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn crash_drill_main(spec: &CrashSpec, steps: u64, metrics: bool) -> ExitCode {
    let run = || crashdrill::run_drill(spec, steps);
    let (report, telemetry) = if metrics {
        let (r, t) = simcore::telemetry::capture(run);
        (r, Some(t))
    } else {
        (run(), None)
    };
    println!(
        "crash drill: {} step(s) before power cut, {} journal record(s) logged",
        report.steps_before_crash, report.records_logged
    );
    println!(
        "  recovery:  {} committed record(s) replayed, {} in-flight discarded",
        report.replayed, report.discarded
    );
    println!(
        "  durability: {} ({} path(s) in the recovered tree)",
        if report.prefix_durable {
            "committed prefix restored exactly"
        } else {
            "RECOVERED TREE != LAST COMMITTED TREE"
        },
        report.recovered_paths
    );
    if report.fsck_problems.is_empty() {
        println!("  fsck:      clean");
    } else {
        println!("  fsck:      {} problem(s)", report.fsck_problems.len());
        for p in &report.fsck_problems {
            println!("             - {p}");
        }
    }
    if report.scrub_errors.is_empty() {
        println!("  scrub:     full sweep clean");
    } else {
        println!("  scrub:     {} error(s)", report.scrub_errors.len());
        for e in &report.scrub_errors {
            println!("             - {e}");
        }
    }
    if let Some(telemetry) = &telemetry {
        println!("{}", telemetry.to_metrics_json());
    }
    if report.passed() {
        println!("drill PASSED");
        ExitCode::SUCCESS
    } else {
        println!("drill FAILED");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("suite") {
        return suite_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("bench") {
        return bench_main(&argv[1..]);
    }
    /// Convert the engine's structured [`cluster::PartitionUnsupported`]
    /// error (thrown as a typed panic by `run_sim`) into the CLI's normal
    /// `error: ...` channel, so a `--sim-threads` run that hits an
    /// unsupported feature exits cleanly with the model name and the
    /// rerun hint instead of dumping a panic backtrace. Any other panic
    /// keeps unwinding.
    fn surface_partition_errors<T>(f: impl FnOnce() -> T) -> Result<T, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|e| {
            match e.downcast::<cluster::PartitionUnsupported>() {
                Ok(p) => p.to_string(),
                Err(other) => std::panic::resume_unwind(other),
            }
        })
    }
    if argv.first().map(String::as_str) == Some("analyze") {
        return analyze_main(&argv[1..]);
    }
    let cli = match parse_args() {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(spec) = &cli.crash {
        return crash_drill_main(spec, cli.params.problem_size, cli.metrics);
    }

    let run_campaign = || -> Result<dmetabench::Campaign, String> {
        match cli.mode.as_str() {
            "sim" => {
                let factory = model_factory(&cli.fs, cli.faults.as_ref(), cli.mds_shards)?;
                // volume-addressed models need volume-prefixed directories
                let mut params = cli.params.clone();
                if matches!(cli.fs.as_str(), "ontapgx" | "afs") && params.path_list.is_none() {
                    params.workdir = format!("/vol0{}", params.workdir);
                }
                let world = MpiWorld::uniform(cli.nodes, cli.slots_per_node);
                let placement = Placement::discover(&world);
                eprintln!(
                    "simulated world: {} nodes x {} slots, model '{}', master rank {}",
                    cli.nodes, cli.slots_per_node, cli.fs, placement.master_rank
                );
                surface_partition_errors(|| {
                    Runner::new(params).run_simulated(&placement, factory, &SimConfig::default())
                })
            }
            "real" => {
                if cli.faults.is_some() {
                    return Err("--faults only applies to --mode sim".into());
                }
                let workdir = cli.params.workdir.clone();
                eprintln!(
                    "real mode: up to {} worker threads on {}",
                    cli.threads, workdir
                );
                let mut params = cli.params.clone();
                // StdFs jails paths under its root; plugins see "/"
                params.workdir = "/".into();
                Ok(Runner::new(params).run_real(
                    move |_| {
                        Box::new(
                            memfs::StdFs::new(&workdir)
                                .expect("working directory must be creatable/writable"),
                        )
                    },
                    cli.threads,
                    &ThreadRunConfig::default(),
                ))
            }
            other => Err(format!("unknown --mode '{other}'")),
        }
    };
    let traced = cli.trace_out.is_some() || cli.metrics;
    let (campaign, telemetry) = if traced {
        let (campaign, report) = simcore::telemetry::capture(run_campaign);
        (campaign, Some(report))
    } else {
        (run_campaign(), None)
    };
    let campaign = match campaign {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(telemetry) = &telemetry {
        if let Some(dir) = &cli.trace_out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let trace_path = dir.join(format!("{}.trace.json", cli.params.label));
            let metrics_path = dir.join(format!("{}.metrics.json", cli.params.label));
            for (path, content) in [
                (&trace_path, telemetry.to_chrome_trace_json()),
                (&metrics_path, telemetry.to_metrics_json()),
            ] {
                if let Err(e) = std::fs::write(path, content) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            eprintln!("[trace] {}", trace_path.display());
        }
        if cli.metrics {
            println!("{}", telemetry.to_metrics_json());
        }
    }

    print!("{}", campaign.summary_tsv());
    if let Some(dir) = cli.output {
        if let Err(e) = campaign.write_to_dir(&dir) {
            eprintln!("error: cannot write results to {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        eprintln!("results written to {}", dir.display());
    }
    ExitCode::SUCCESS
}
