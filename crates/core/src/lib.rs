//! **DMetabench** — a distributed metadata benchmark framework.
//!
//! This crate is the Rust reproduction of the framework presented in
//! Christoph Biardzki, *Analyzing Metadata Performance in Distributed File
//! Systems* (2009), Chapter 3. It provides:
//!
//! * the pre-defined benchmark plugins of Table 3.5
//!   (MakeFiles, DeleteFiles, StatFiles, StatNocacheFiles,
//!   StatMultinodeFiles, …) and the [`BenchmarkPlugin`] trait for custom
//!   operations,
//! * the [`Runner`] implementing the master's nested loops over nodes ×
//!   processes-per-node × operations (§3.3.3), against simulated
//!   distributed file systems (`dfs` models on virtual time) or real
//!   file systems (`memfs::StdFs` threads),
//! * [time-interval logging](crate::ResultSet) and the
//!   [preprocessing](crate::preprocess::preprocess) pipeline: per-interval throughput,
//!   per-process standard deviation and COV, stonewall and fixed-N
//!   averages — validated against the paper's worked example (listings
//!   3.3–3.5),
//! * [chart generation](crate::chart): the combined time chart,
//!   performance-vs-processes and performance-vs-nodes charts (§3.3.10),
//!   as ASCII and SVG,
//! * [environment profiling](crate::EnvironmentProfile) for retrospective
//!   analysis (§3.2.6),
//! * [critical-path analysis](crate::analyze) over captured telemetry:
//!   per-op latency attribution into network / queueing / service /
//!   lock-wait / client segments (`dmetabench analyze`).
//!
//! # Quickstart
//!
//! ```
//! use dmetabench::{BenchParams, Runner};
//! use cluster::{MpiWorld, Placement, SimConfig};
//! use dfs::NfsFs;
//! use simcore::SimDuration;
//!
//! let params = BenchParams {
//!     operations: vec!["MakeFiles".into()],
//!     duration: SimDuration::from_secs(2),
//!     ..BenchParams::default()
//! };
//! let placement = Placement::discover(&MpiWorld::uniform(2, 2));
//! let campaign = Runner::new(params).run_simulated(
//!     &placement,
//!     || Box::new(NfsFs::with_defaults()),
//!     &SimConfig::default(),
//! );
//! assert!(!campaign.results.is_empty());
//! println!("{}", campaign.summary_tsv());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod baseline;
pub mod bench;
pub mod chart;
pub mod crashdrill;
mod params;
mod plugin;
pub mod preprocess;
mod profile;
mod result;
mod runner;
pub mod scaling;
pub mod scenarios;
pub mod suite;
pub mod trace;

pub use params::{BenchParams, WorkerCtx};
pub use plugin::{
    all_plugin_names, plugin_by_name, BenchmarkPlugin, DeleteFiles, MailServer, MakeDirs,
    MakeFiles, MakeFiles64byte, MakeFiles65byte, MakeOnedirFiles, OpenCloseFiles, ProblemMode,
    ReaddirFiles, RenameFiles, StatFiles, StatMultinodeFiles, StatNocacheFiles,
};
pub use preprocess::{align_to_grid, preprocess, IntervalRow, Preprocessed};
pub use profile::EnvironmentProfile;
pub use result::{ProcessTrace, ResultSet};
pub use runner::{apply_ops_to_model, run_single, BenchResult, Campaign, Runner};
pub use trace::{parse_trace, write_trace, TraceReplay};
