//! Checked-in JSON baselines for the shape-regression suite.
//!
//! Every scenario's [`ShapeReport`](crate::suite::ShapeReport) is stored
//! under `baselines/<id>.json` (blessed via `dmetabench suite --bless`).
//! Comparison semantics:
//!
//! * metrics with `tolerance: None` are informational (wall-clock numbers)
//!   and never compared,
//! * `tolerance: Some(0.0)` means **bit-identical** (`f64::to_bits`) — used
//!   for the paper's exact-match artifacts (Table 3.1, Fig. 3.4, the
//!   64/65-byte allocation boundary),
//! * `tolerance: Some(t)` means `|actual - expected| <= t * max(1, |expected|)`,
//! * shape checks must keep passing and keep the same names,
//! * for deterministic scenarios the rendered tables, notes and summary
//!   must match exactly (the strongest regression pin).

use crate::suite::{Metric, ShapeReport};
use std::path::{Path, PathBuf};

/// Environment variable overriding the baselines directory.
pub const BASELINES_ENV: &str = "DMETABENCH_BASELINES";

/// Directory holding the checked-in baselines (`baselines/` at the repo
/// root, overridable via [`BASELINES_ENV`]).
pub fn baselines_dir() -> PathBuf {
    if let Ok(dir) = std::env::var(BASELINES_ENV) {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines")
}

/// Path of one scenario's baseline file.
pub fn baseline_path(id: &str) -> PathBuf {
    baselines_dir().join(format!("{id}.json"))
}

/// Load a scenario's baseline, `Ok(None)` if it has not been blessed yet.
pub fn load(id: &str) -> Result<Option<ShapeReport>, String> {
    let path = baseline_path(id);
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| format!("cannot parse {}: {e:?}", path.display()))
}

/// Write (bless) a scenario's report as the new baseline.
pub fn save(report: &ShapeReport) -> Result<PathBuf, String> {
    let path = baseline_path(&report.id);
    save_to(report, &path)?;
    Ok(path)
}

/// Write a report as a baseline at an explicit path.
pub fn save_to(report: &ShapeReport, path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    let mut text = serde_json::to_string_pretty(report)
        .map_err(|e| format!("cannot serialize report: {e:?}"))?;
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Whether `actual` is acceptable for `expected` under a relative
/// tolerance. `tolerance == 0.0` demands bit-identity.
pub fn within_tolerance(expected: f64, actual: f64, tolerance: f64) -> bool {
    if tolerance == 0.0 {
        expected.to_bits() == actual.to_bits()
    } else {
        (actual - expected).abs() <= tolerance * expected.abs().max(1.0)
    }
}

/// Result of comparing a run against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineStatus {
    /// Report matches the baseline.
    Match,
    /// No baseline file exists for this scenario.
    Missing,
    /// Report deviates; each string describes one mismatch.
    Mismatch(Vec<String>),
}

impl BaselineStatus {
    /// Whether this status should fail the suite.
    pub fn is_failure(&self) -> bool {
        !matches!(self, BaselineStatus::Match)
    }
}

/// Compare an actual report against its blessed baseline.
pub fn compare(expected: &ShapeReport, actual: &ShapeReport) -> BaselineStatus {
    let mut mismatches = Vec::new();

    if expected.id != actual.id {
        mismatches.push(format!("id changed: '{}' → '{}'", expected.id, actual.id));
    }
    if expected.deterministic != actual.deterministic {
        mismatches.push(format!(
            "determinism flag changed: {} → {}",
            expected.deterministic, actual.deterministic
        ));
    }

    compare_metrics(expected, actual, &mut mismatches);
    compare_checks(expected, actual, &mut mismatches);

    // For pure virtual-time scenarios the human-visible output is itself a
    // deterministic function of the code: pin it verbatim.
    if expected.deterministic && actual.deterministic {
        if expected.summary != actual.summary {
            mismatches.push(format!(
                "summary changed: '{}' → '{}'",
                expected.summary, actual.summary
            ));
        }
        if expected.tables != actual.tables {
            for (e, a) in expected.tables.iter().zip(&actual.tables) {
                if e != a {
                    mismatches.push(format!("table '{}' changed", e.title));
                }
            }
            if expected.tables.len() != actual.tables.len() {
                mismatches.push(format!(
                    "table count changed: {} → {}",
                    expected.tables.len(),
                    actual.tables.len()
                ));
            }
        }
        if expected.notes != actual.notes {
            mismatches.push("notes changed".to_owned());
        }
    }

    if mismatches.is_empty() {
        BaselineStatus::Match
    } else {
        BaselineStatus::Mismatch(mismatches)
    }
}

fn compare_metrics(expected: &ShapeReport, actual: &ShapeReport, out: &mut Vec<String>) {
    for em in &expected.metrics {
        let Some(am) = actual.metric(&em.name) else {
            out.push(format!("metric '{}' disappeared", em.name));
            continue;
        };
        if em.tolerance != am.tolerance {
            out.push(format!(
                "metric '{}' tolerance changed: {:?} → {:?}",
                em.name, em.tolerance, am.tolerance
            ));
            continue;
        }
        let Some(tol) = em.tolerance else {
            continue; // informational
        };
        if !within_tolerance(em.value, am.value, tol) {
            out.push(describe_value_mismatch(em, am.value, tol));
        }
    }
    for am in &actual.metrics {
        if expected.metric(&am.name).is_none() {
            out.push(format!("metric '{}' is new (re-bless to accept)", am.name));
        }
    }
}

fn describe_value_mismatch(expected: &Metric, actual: f64, tol: f64) -> String {
    if tol == 0.0 {
        format!(
            "metric '{}' must be bit-identical: expected {:?} (bits {:#x}), got {:?} (bits {:#x})",
            expected.name,
            expected.value,
            expected.value.to_bits(),
            actual,
            actual.to_bits()
        )
    } else {
        format!(
            "metric '{}' outside ±{} band: expected {:?}, got {:?}",
            expected.name, tol, expected.value, actual
        )
    }
}

fn compare_checks(expected: &ShapeReport, actual: &ShapeReport, out: &mut Vec<String>) {
    for ec in &expected.checks {
        match actual.checks.iter().find(|c| c.name == ec.name) {
            None => out.push(format!("check '{}' disappeared", ec.name)),
            Some(ac) if !ac.passed => {
                out.push(format!("check '{}' now FAILS: {}", ec.name, ac.detail))
            }
            Some(_) => {}
        }
    }
    for ac in &actual.checks {
        if !expected.checks.iter().any(|c| c.name == ac.name) {
            if ac.passed {
                out.push(format!("check '{}' is new (re-bless to accept)", ac.name));
            } else {
                out.push(format!("new check '{}' FAILS: {}", ac.name, ac.detail));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{ExpTable, ShapeCheck};

    fn report(metrics: Vec<Metric>) -> ShapeReport {
        ShapeReport {
            id: "t".into(),
            title: "T".into(),
            paper_ref: "§0".into(),
            deterministic: true,
            summary: "s".into(),
            metrics,
            checks: vec![ShapeCheck {
                name: "holds".into(),
                passed: true,
                detail: "d".into(),
            }],
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    fn metric(name: &str, value: f64, tolerance: Option<f64>) -> Metric {
        Metric {
            name: name.into(),
            value,
            tolerance,
        }
    }

    #[test]
    fn exact_tolerance_means_bit_identity() {
        // The listing-3.5 stonewall arithmetic is the golden exact value:
        // 22 191 ops/s on the paper's filer.
        let golden = 22_191.0_f64;
        assert!(within_tolerance(golden, 22_191.0, 0.0));
        assert!(!within_tolerance(golden, 22_191.0000000001, 0.0));
        assert!(!within_tolerance(golden, 22_190.0, 0.0));
        // bit-identity distinguishes signed zeros and is strict about ulps
        assert!(!within_tolerance(0.0, -0.0, 0.0));
        assert!(!within_tolerance(
            golden,
            f64::from_bits(golden.to_bits() + 1),
            0.0
        ));
    }

    #[test]
    fn tolerance_band_is_relative_with_unit_floor() {
        // 1 % of 22 191 is ±221.91
        assert!(within_tolerance(22_191.0, 22_400.0, 0.01));
        assert!(!within_tolerance(22_191.0, 22_500.0, 0.01));
        // near zero the band floors at the absolute tolerance
        assert!(within_tolerance(0.0, 0.005, 0.01));
        assert!(!within_tolerance(0.0, 0.02, 0.01));
    }

    #[test]
    fn stonewall_fig_3_4_arithmetic_survives_exact_comparison() {
        // Fig. 3.4's stonewall average is 70/3 — a non-terminating binary
        // fraction. The same expression must compare bit-equal; a reordered
        // computation that changes the last ulp must not.
        let stonewall = 70.0 / 3.0;
        assert!(within_tolerance(stonewall, 70.0 / 3.0, 0.0));
        let perturbed = f64::from_bits(stonewall.to_bits() ^ 1);
        assert!(!within_tolerance(stonewall, perturbed, 0.0));
    }

    #[test]
    fn informational_metrics_are_not_compared() {
        let expected = report(vec![metric("wall", 1.0, None)]);
        let actual = report(vec![metric("wall", 99.0, None)]);
        assert_eq!(compare(&expected, &actual), BaselineStatus::Match);
    }

    #[test]
    fn exact_metric_drift_is_a_mismatch() {
        let expected = report(vec![metric("iso_total", 12_000.0, Some(0.0))]);
        let actual = report(vec![metric("iso_total", 12_000.5, Some(0.0))]);
        match compare(&expected, &actual) {
            BaselineStatus::Mismatch(ms) => {
                assert!(ms[0].contains("bit-identical"), "{ms:?}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn band_metric_within_and_outside() {
        let expected = report(vec![metric("rate", 1000.0, Some(0.05))]);
        let ok = report(vec![metric("rate", 1040.0, Some(0.05))]);
        assert_eq!(compare(&expected, &ok), BaselineStatus::Match);
        let bad = report(vec![metric("rate", 1100.0, Some(0.05))]);
        assert!(compare(&expected, &bad).is_failure());
    }

    #[test]
    fn tolerance_redefinition_is_a_mismatch() {
        let expected = report(vec![metric("rate", 1000.0, Some(0.0))]);
        let actual = report(vec![metric("rate", 1000.0, Some(0.5))]);
        assert!(compare(&expected, &actual).is_failure());
    }

    #[test]
    fn missing_new_and_failing_entries_are_mismatches() {
        let expected = report(vec![metric("a", 1.0, Some(0.0))]);
        let mut actual = report(vec![metric("b", 1.0, Some(0.0))]);
        actual.checks[0].passed = false;
        let BaselineStatus::Mismatch(ms) = compare(&expected, &actual) else {
            panic!("expected mismatch");
        };
        assert!(ms.iter().any(|m| m.contains("'a' disappeared")), "{ms:?}");
        assert!(ms.iter().any(|m| m.contains("'b' is new")), "{ms:?}");
        assert!(ms.iter().any(|m| m.contains("now FAILS")), "{ms:?}");
    }

    #[test]
    fn deterministic_reports_pin_tables_and_notes() {
        let mut t = ExpTable::new("tab", &["a"]);
        t.row(vec!["1".into()]);
        let mut expected = report(Vec::new());
        expected.tables.push(t.clone());
        expected.notes.push("chart".into());
        let mut actual = expected.clone();
        assert_eq!(compare(&expected, &actual), BaselineStatus::Match);
        actual.tables[0].rows[0][0] = "2".into();
        assert!(compare(&expected, &actual).is_failure());

        // …but not for wall-clock scenarios
        expected.deterministic = false;
        let mut wallclock = expected.clone();
        wallclock.tables[0].rows[0][0] = "2".into();
        wallclock.notes[0] = "other".into();
        assert_eq!(compare(&expected, &wallclock), BaselineStatus::Match);
    }

    #[test]
    fn baseline_roundtrip_preserves_float_bits() {
        let dir = std::env::temp_dir().join("dmetabench-baseline-test");
        let path = dir.join("t.json");
        let expected = report(vec![
            metric("third", 1.0 / 3.0, Some(0.0)),
            metric("stonewall", 70.0 / 3.0, Some(0.0)),
        ]);
        save_to(&expected, &path).expect("writable temp dir");
        let text = std::fs::read_to_string(&path).expect("readable");
        let back: ShapeReport = serde_json::from_str(&text).expect("parses");
        assert_eq!(compare(&expected, &back), BaselineStatus::Match);
        std::fs::remove_dir_all(&dir).ok();
    }
}
