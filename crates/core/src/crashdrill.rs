//! The `--crash <spec>` power-loss drill.
//!
//! A deterministic scripted workload runs on an async-journal [`MemFs`]
//! with explicit commit boundaries every [`COMMIT_EVERY`] steps; the crash
//! schedule (grammar: `crash-after:N-records`, `torn:last`, `reorder:K`,
//! `seed=N` — the journal-side sibling of `--faults`) cuts power and
//! damages the simulated log tail, then the drill recovers, replays, runs
//! fsck, and sweeps the recovered image with the online scrubber. The same
//! workload feeds the registered `exp_crash_recovery` scenario, so a drill
//! failure is reproducible under the suite.

use memfs::crash::CrashSpec;
use memfs::{FileType, MemFs, MemFsConfig, OpenFlags, Scrubber, Vfs};

/// Steps between the explicit journal commits of the drill workload.
pub const COMMIT_EVERY: u64 = 5;

/// An async-journal file system with auto-commit out of the way, a `/sync`
/// fsync handle, and a clean checkpoint — the drill/scenario harness.
pub(crate) fn harness_fs() -> MemFs {
    let mut config = MemFsConfig::default();
    config.journal_mode = memfs::JournalMode::Async;
    config.commit_every = 1_000_000; // explicit commits only
    let mut fs = MemFs::with_config(config);
    fs.create("/sync")
        .and_then(|fd| fs.close(fd))
        .expect("/sync");
    fs.checkpoint();
    fs
}

/// One deterministic workload step: the mix covers every journal record
/// kind (mkdir, create, write/setsize, rename, link, symlink, setxattr,
/// unlink). Steps that race their own prerequisites simply fail and log
/// nothing — crash triggers count records actually written.
pub(crate) fn apply_step(fs: &mut MemFs, i: u64) {
    match i % 8 {
        0 => {
            let _ = fs.mkdir(&format!("/d{}", i / 8));
        }
        1 => {
            let path = format!("/d{}/f{i}", i / 8);
            if let Ok(fd) = fs.open(&path, OpenFlags::write_create()) {
                let len = 100 + (i as usize % 5) * 700;
                fs.write(fd, &vec![i as u8; len]).expect("write");
                fs.close(fd).expect("close");
            }
        }
        2 => {
            let _ = fs.create(&format!("/top{i}")).and_then(|fd| fs.close(fd));
        }
        3 => {
            let _ = fs.rename(&format!("/top{}", i - 1), &format!("/moved{i}"));
        }
        4 => {
            let _ = fs.symlink(&format!("/moved{}", i - 1), &format!("/s{i}"));
        }
        5 => {
            let _ = fs.link(&format!("/moved{}", i - 2), &format!("/l{i}"));
        }
        6 => {
            let _ = fs.setxattr(&format!("/moved{}", i - 3), "user.crash", &[i as u8]);
        }
        _ => {
            let _ = fs.unlink(&format!("/l{}", i - 2));
        }
    }
}

/// Journaled-metadata view of the tree (path, type, size, nlink) — the
/// prefix-durability comparison key. `lstat`-based so dangling symlinks
/// are observable.
pub(crate) fn observe_meta(fs: &mut MemFs) -> Vec<(String, u8, u64, u32)> {
    let mut out = Vec::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        let mut entries = fs.readdir(&dir).expect("readdir");
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for e in entries {
            if e.name == "." || e.name == ".." {
                continue;
            }
            let path = if dir == "/" {
                format!("/{}", e.name)
            } else {
                format!("{dir}/{}", e.name)
            };
            let st = fs.lstat(&path).expect("lstat");
            let tag = match st.file_type {
                FileType::Regular => 0,
                FileType::Directory => 1,
                FileType::Symlink => 2,
            };
            if st.file_type == FileType::Directory {
                stack.push(path.clone());
            }
            out.push((path, tag, st.size, st.nlink));
        }
    }
    out.sort();
    out
}

/// Commit the journal through an fd on the pre-checkpoint `/sync` file.
pub(crate) fn commit_all(fs: &mut MemFs) {
    let fd = fs
        .open("/sync", OpenFlags::read_only())
        .expect("open /sync");
    fs.fsync(fd).expect("fsync");
    fs.close(fd).expect("close /sync");
}

/// What one drill run observed.
#[derive(Debug, Clone)]
pub struct DrillReport {
    /// Workload steps executed before the power cut.
    pub steps_before_crash: u64,
    /// Journal records logged over the whole run.
    pub records_logged: u64,
    /// Committed records the recovery scanner replayed.
    pub replayed: usize,
    /// In-flight records refused (uncommitted + torn + reordered).
    pub discarded: usize,
    /// The recovered tree equals the last committed tree.
    pub prefix_durable: bool,
    /// fsck problems on the recovered image (empty = clean).
    pub fsck_problems: Vec<String>,
    /// Scrub errors from one full sweep of the recovered image.
    pub scrub_errors: Vec<String>,
    /// Paths in the recovered tree.
    pub recovered_paths: usize,
}

impl DrillReport {
    /// The drill passed: durable prefix, clean fsck, clean scrub.
    pub fn passed(&self) -> bool {
        self.prefix_durable && self.fsck_problems.is_empty() && self.scrub_errors.is_empty()
    }
}

/// Run the drill: `steps` scripted ops, power cut per `spec` (at its
/// `crash-after` trigger, or after the last step when the spec has none),
/// recovery, fsck, and a full scrub sweep of the recovered image.
pub fn run_drill(spec: &CrashSpec, steps: u64) -> DrillReport {
    let mut fs = harness_fs();
    let mut plan = spec.build();
    let trigger = plan.crash_after();
    let mut committed_obs = observe_meta(&mut fs);
    let mut steps_before_crash = steps;

    for i in 0..steps {
        apply_step(&mut fs, i);
        // The trigger outranks the step's commit: power cuts mid-window,
        // with the step's records still volatile.
        if trigger.is_some_and(|n| fs.journal_total_logged() >= n) {
            steps_before_crash = i + 1;
            break;
        }
        if i % COMMIT_EVERY == COMMIT_EVERY - 1 {
            commit_all(&mut fs);
            committed_obs = observe_meta(&mut fs);
        }
    }

    let records_logged = fs.journal_total_logged();
    let stats = fs.crash_with(&mut plan);
    let recovered = observe_meta(&mut fs);
    let prefix_durable = recovered == committed_obs;
    let fsck_problems = fs.check();

    let mut scrub = Scrubber::new();
    while scrub.stats.sweeps_completed == 0 {
        fs.scrub_step(&mut scrub, 64);
    }

    DrillReport {
        steps_before_crash,
        records_logged,
        replayed: stats.replayed,
        discarded: stats.discarded(),
        prefix_durable,
        fsck_problems,
        scrub_errors: scrub.stats.errors,
        recovered_paths: recovered.len(),
    }
}
