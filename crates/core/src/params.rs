//! Benchmark parameters (paper §3.3.5, Table 3.4) and worker contexts.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Explicit DMetabench parameters (the implicit ones — slot count and
/// placement — come from the [`cluster::MpiWorld`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchParams {
    /// Operations to run, by plugin name (`MakeFiles`, `StatFiles`, …).
    pub operations: Vec<String>,
    /// Problem size: per-process operation count for fixed-size benchmarks,
    /// and the per-directory file limit for timed ones (§3.3.7).
    pub problem_size: u64,
    /// Target directory all processes share an ancestor under (§3.3.6).
    pub workdir: String,
    /// Optional per-process path list (one directory per process, matched
    /// in worker order — namespace-aggregated file systems, §3.3.6).
    pub path_list: Option<Vec<String>>,
    /// Node step (test 1, s, 2s, … nodes; §3.3.5).
    pub node_step: usize,
    /// Processes-per-node step.
    pub ppn_step: usize,
    /// Run duration for timed benchmarks like MakeFiles (the paper uses
    /// 60 s; tests and examples shrink it).
    pub duration: SimDuration,
    /// Progress-sampling interval (default 0.1 s).
    pub sample_interval: SimDuration,
    /// Free-form label stored with results (`--label`).
    pub label: String,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            operations: vec!["MakeFiles".to_owned()],
            problem_size: 5000,
            workdir: "/bench".to_owned(),
            path_list: None,
            node_step: 1,
            ppn_step: 1,
            duration: SimDuration::from_secs(60),
            sample_interval: SimDuration::from_millis(100),
            label: "unlabeled".to_owned(),
        }
    }
}

/// Everything a plugin needs to know about one worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCtx {
    /// Global worker index within the run (worker order, §3.3.4).
    pub index: usize,
    /// Node index.
    pub node: usize,
    /// Process index within the node.
    pub proc: usize,
    /// Total workers in the run.
    pub nprocs: usize,
    /// This worker's private working directory.
    pub workdir: String,
    /// A directory shared by all workers of the run (MakeOnedirFiles).
    pub shared_dir: String,
    /// The working directory of this worker's peer on another node
    /// (StatMultinodeFiles); equals `workdir` in single-node runs.
    pub peer_workdir: String,
    /// Per-process problem size.
    pub problem_size: u64,
    /// Maximum files per subdirectory before rotating to a new one
    /// (§3.3.7).
    pub dir_limit: u64,
}

impl WorkerCtx {
    /// Compute worker contexts for a run.
    ///
    /// `workers` is the ordered `(node, proc)` list; directories default to
    /// `{workdir}/p{index}` or come from `path_list` matched by worker
    /// order (Fig. 3.10). Peers pair workers with the same `proc` on the
    /// next node (wrapping), so the peer is on a *different* node whenever
    /// more than one node participates.
    pub fn build(
        workers: &[(usize, usize)],
        params: &BenchParams,
        nodes_in_run: usize,
    ) -> Vec<WorkerCtx> {
        let n = workers.len();
        let dir_of = |index: usize| -> String {
            match &params.path_list {
                Some(list) if index < list.len() => list[index].clone(),
                _ => format!("{}/p{index}", params.workdir),
            }
        };
        workers
            .iter()
            .enumerate()
            .map(|(index, &(node, proc))| {
                // peer: same proc slot on the next participating node
                let peer_index = workers
                    .iter()
                    .position(|&(pn, pp)| pp == proc && pn == (node + 1) % nodes_in_run.max(1))
                    .unwrap_or(index);
                WorkerCtx {
                    index,
                    node,
                    proc,
                    nprocs: n,
                    workdir: dir_of(index),
                    shared_dir: format!("{}/shared", params.workdir),
                    peer_workdir: dir_of(peer_index),
                    problem_size: params.problem_size,
                    dir_limit: params.problem_size.max(1),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_directories_are_per_process() {
        let params = BenchParams::default();
        let workers = vec![(0, 0), (1, 0), (0, 1), (1, 1)];
        let ctxs = WorkerCtx::build(&workers, &params, 2);
        assert_eq!(ctxs[0].workdir, "/bench/p0");
        assert_eq!(ctxs[3].workdir, "/bench/p3");
        assert_eq!(ctxs[0].shared_dir, "/bench/shared");
        assert_eq!(ctxs[0].nprocs, 4);
    }

    #[test]
    fn path_list_matched_in_worker_order() {
        let mut params = BenchParams::default();
        params.path_list = Some(vec!["/vol0/a".into(), "/vol1/b".into(), "/vol2/c".into()]);
        let workers = vec![(0, 0), (1, 0), (0, 1)];
        let ctxs = WorkerCtx::build(&workers, &params, 2);
        assert_eq!(ctxs[0].workdir, "/vol0/a");
        assert_eq!(ctxs[1].workdir, "/vol1/b");
        assert_eq!(ctxs[2].workdir, "/vol2/c");
    }

    #[test]
    fn peers_are_on_other_nodes() {
        let params = BenchParams::default();
        let workers = vec![(0, 0), (1, 0), (0, 1), (1, 1)];
        let ctxs = WorkerCtx::build(&workers, &params, 2);
        // worker 0 (node 0, proc 0) pairs with worker 1 (node 1, proc 0)
        assert_eq!(ctxs[0].peer_workdir, ctxs[1].workdir);
        assert_eq!(ctxs[1].peer_workdir, ctxs[0].workdir);
        assert_eq!(ctxs[2].peer_workdir, ctxs[3].workdir);
    }

    #[test]
    fn single_node_peer_is_self() {
        let params = BenchParams::default();
        let workers = vec![(0, 0), (0, 1)];
        let ctxs = WorkerCtx::build(&workers, &params, 1);
        assert_eq!(ctxs[0].peer_workdir, ctxs[0].workdir);
    }
}
