//! Critical-path analysis over a captured telemetry report.
//!
//! The engine attributes every completed operation's end-to-end latency to
//! five causal segments (client CPU, network, server queueing, server
//! service, lock wait — see `cluster::simengine`) and records them as
//! [`OpRecord`]s. This module walks those records and produces the
//! per-scenario performance breakdown behind `dmetabench analyze`:
//!
//! * per-op-name aggregation — op count, mean latency, per-segment share,
//!   p50/p99 per segment (power-of-two bucket resolution, see
//!   [`LatencyHistogram::percentile`]),
//! * cache outcome split (hit / miss / untagged op counts),
//! * the top-k slowest individual chains with their segment breakdowns and
//!   resolved process/track names,
//! * a consistency block proving the invariant the analyzer rests on: the
//!   sum of every record's segments equals its duration, and the records'
//!   total duration equals the `op.latency` histogram total.
//!
//! Everything here is a pure function of the [`TelemetryReport`], so the
//! JSON and Markdown outputs are byte-deterministic.

use simcore::telemetry::{CacheTag, OpRecord};
use simcore::{LatencyHistogram, TelemetryReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The five attribution segments, in presentation order.
pub const SEGMENTS: [&str; 5] = ["client", "network", "queue", "service", "lock"];

fn segments_of(r: &OpRecord) -> [u64; 5] {
    [
        r.client_ns,
        r.network_ns,
        r.queue_ns,
        r.service_ns,
        r.lock_ns,
    ]
}

/// Aggregated statistics for one segment within one op-name group.
#[derive(Debug, Clone)]
pub struct SegmentStats {
    /// Total virtual nanoseconds attributed to this segment.
    pub total_ns: u64,
    /// Median per-op contribution (bucketed).
    pub p50_ns: u64,
    /// 99th-percentile per-op contribution (bucketed).
    pub p99_ns: u64,
}

/// Aggregation of all records sharing one op name.
#[derive(Debug, Clone)]
pub struct OpGroup {
    /// Operation label (`"create"`, `"stat"`, …).
    pub name: String,
    /// Number of operations.
    pub count: u64,
    /// Total end-to-end latency.
    pub dur_total_ns: u64,
    /// p50 / p99 of end-to-end latency (bucketed).
    pub dur_p50_ns: u64,
    /// 99th percentile of end-to-end latency (bucketed).
    pub dur_p99_ns: u64,
    /// Per-segment stats in [`SEGMENTS`] order.
    pub segments: Vec<SegmentStats>,
    /// Ops served from a client cache.
    pub cache_hits: u64,
    /// Ops that missed a client cache.
    pub cache_misses: u64,
}

/// One of the slowest individual operation chains.
#[derive(Debug, Clone)]
pub struct SlowChain {
    /// Operation label.
    pub name: String,
    /// Causal id of the op span (matches the trace's `args.id`).
    pub id: u64,
    /// Run (trace process) the op belongs to.
    pub process: String,
    /// Worker track the op ran on.
    pub track: String,
    /// Virtual start time.
    pub start_ns: u64,
    /// End-to-end latency.
    pub dur_ns: u64,
    /// Segment values in [`SEGMENTS`] order.
    pub segments: [u64; 5],
    /// Cache outcome label.
    pub cache: &'static str,
}

/// The analyzer's self-check: per-record segment sums vs. durations, and
/// record totals vs. the independently collected `op.latency` histogram.
#[derive(Debug, Clone)]
pub struct Consistency {
    /// Records analyzed.
    pub records: u64,
    /// Sum of all per-record segment sums.
    pub segment_sum_ns: u64,
    /// Sum of all record durations.
    pub dur_sum_ns: u64,
    /// Records whose segments do not sum to their duration (0 in a healthy
    /// run — the engine maintains the invariant exactly).
    pub mismatched_records: u64,
    /// `op.latency` histogram count (`None` if the run recorded none).
    pub hist_count: Option<u64>,
    /// `op.latency` histogram sum.
    pub hist_sum_ns: Option<u64>,
    /// All cross-checks hold.
    pub consistent: bool,
}

/// The complete critical-path analysis of one captured run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-op-name groups, sorted by total latency descending (ties by
    /// name, so output order is deterministic).
    pub groups: Vec<OpGroup>,
    /// Overall totals per segment in [`SEGMENTS`] order.
    pub totals: [u64; 5],
    /// Total end-to-end latency across all records.
    pub dur_total_ns: u64,
    /// The top-k slowest chains, slowest first.
    pub slowest: Vec<SlowChain>,
    /// Self-check block.
    pub consistency: Consistency,
}

/// Analyze a report's op records, keeping the `top_k` slowest chains.
#[must_use]
pub fn analyze(report: &TelemetryReport, top_k: usize) -> Analysis {
    let records = report.op_records();

    let mut by_name: BTreeMap<&str, Vec<&OpRecord>> = BTreeMap::new();
    for r in records {
        by_name.entry(r.name).or_default().push(r);
    }

    let mut groups: Vec<OpGroup> = by_name
        .into_iter()
        .map(|(name, rs)| {
            let mut dur_hist = LatencyHistogram::new();
            let mut seg_hists: Vec<LatencyHistogram> = (0..SEGMENTS.len())
                .map(|_| LatencyHistogram::new())
                .collect();
            let mut seg_totals = [0u64; 5];
            let (mut hits, mut misses) = (0u64, 0u64);
            for r in &rs {
                dur_hist.push(simcore::SimDuration::from_nanos(r.dur_ns));
                for (i, v) in segments_of(r).into_iter().enumerate() {
                    seg_totals[i] += v;
                    seg_hists[i].push(simcore::SimDuration::from_nanos(v));
                }
                match r.cache {
                    CacheTag::Hit => hits += 1,
                    CacheTag::Miss => misses += 1,
                    CacheTag::Untagged => {}
                }
            }
            OpGroup {
                name: name.to_owned(),
                count: rs.len() as u64,
                dur_total_ns: dur_hist.sum().as_nanos(),
                dur_p50_ns: dur_hist.percentile(0.50).as_nanos(),
                dur_p99_ns: dur_hist.percentile(0.99).as_nanos(),
                segments: seg_hists
                    .iter()
                    .zip(seg_totals)
                    .map(|(h, total_ns)| SegmentStats {
                        total_ns,
                        p50_ns: h.percentile(0.50).as_nanos(),
                        p99_ns: h.percentile(0.99).as_nanos(),
                    })
                    .collect(),
                cache_hits: hits,
                cache_misses: misses,
            }
        })
        .collect();
    groups.sort_by(|a, b| {
        b.dur_total_ns
            .cmp(&a.dur_total_ns)
            .then_with(|| a.name.cmp(&b.name))
    });

    let mut totals = [0u64; 5];
    let mut dur_total_ns = 0u64;
    for r in records {
        for (i, v) in segments_of(r).into_iter().enumerate() {
            totals[i] += v;
        }
        dur_total_ns += r.dur_ns;
    }

    // top-k slowest chains: sort indices by duration descending; ties break
    // by (start, pid, tid) so the selection is deterministic.
    let mut idx: Vec<usize> = (0..records.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ra, rb) = (&records[a], &records[b]);
        rb.dur_ns
            .cmp(&ra.dur_ns)
            .then_with(|| ra.start_ns.cmp(&rb.start_ns))
            .then_with(|| ra.pid.cmp(&rb.pid))
            .then_with(|| ra.tid.cmp(&rb.tid))
    });
    let slowest: Vec<SlowChain> = idx
        .into_iter()
        .take(top_k)
        .map(|i| {
            let r = &records[i];
            SlowChain {
                name: r.name.to_owned(),
                id: r.id,
                process: report.process_name(r.pid).unwrap_or("?").to_owned(),
                track: report
                    .track_name(r.pid, r.tid)
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("tid{}", r.tid)),
                start_ns: r.start_ns,
                dur_ns: r.dur_ns,
                segments: segments_of(r),
                cache: r.cache.label(),
            }
        })
        .collect();

    let segment_sum_ns: u64 = records.iter().map(OpRecord::segment_sum_ns).sum();
    let mismatched = records
        .iter()
        .filter(|r| r.segment_sum_ns() != r.dur_ns)
        .count() as u64;
    let hist = report.histogram("op.latency");
    let hist_count = hist.map(LatencyHistogram::count);
    let hist_sum_ns = hist.map(|h| h.sum().as_nanos());
    let consistent = mismatched == 0
        && segment_sum_ns == dur_total_ns
        && hist_count.is_none_or(|c| c == records.len() as u64)
        && hist_sum_ns.is_none_or(|s| s == dur_total_ns);
    let consistency = Consistency {
        records: records.len() as u64,
        segment_sum_ns,
        dur_sum_ns: dur_total_ns,
        mismatched_records: mismatched,
        hist_count,
        hist_sum_ns,
        consistent,
    };

    Analysis {
        groups,
        totals,
        dur_total_ns,
        slowest,
        consistency,
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Analysis {
    /// Serialize as deterministic JSON (schema `dmetabench.critpath/v1`).
    #[must_use]
    pub fn to_json(&self, scenario: &str) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"dmetabench.critpath/v1\",\n  \"scenario\": \"{}\",\n",
            esc(scenario)
        );
        let seg_obj = |vals: &[u64; 5]| -> String {
            SEGMENTS
                .iter()
                .zip(vals)
                .map(|(s, v)| format!("\"{s}\": {v}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = write!(
            out,
            "  \"totals_ns\": {{{}}},\n  \"dur_total_ns\": {},\n",
            seg_obj(&self.totals),
            self.dur_total_ns
        );
        out.push_str("  \"ops\": [\n");
        for (gi, g) in self.groups.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"count\": {}, \"dur_total_ns\": {}, \
                 \"dur_p50_ns\": {}, \"dur_p99_ns\": {}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"segments\": {{",
                esc(&g.name),
                g.count,
                g.dur_total_ns,
                g.dur_p50_ns,
                g.dur_p99_ns,
                g.cache_hits,
                g.cache_misses
            );
            for (i, (seg, st)) in SEGMENTS.iter().zip(&g.segments).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "\"{seg}\": {{\"total_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                    st.total_ns, st.p50_ns, st.p99_ns
                );
            }
            out.push_str("}}");
            out.push_str(if gi + 1 < self.groups.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"slowest\": [\n");
        for (ci, c) in self.slowest.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"id\": {}, \"process\": \"{}\", \
                 \"track\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}, \
                 \"cache\": \"{}\", \"segments\": {{{}}}}}",
                esc(&c.name),
                c.id,
                esc(&c.process),
                esc(&c.track),
                c.start_ns,
                c.dur_ns,
                c.cache,
                seg_obj(&c.segments)
            );
            out.push_str(if ci + 1 < self.slowest.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let cons = &self.consistency;
        let opt = |v: Option<u64>| v.map_or("null".to_owned(), |v| v.to_string());
        let _ = write!(
            out,
            "  ],\n  \"consistency\": {{\"records\": {}, \"segment_sum_ns\": {}, \
             \"dur_sum_ns\": {}, \"mismatched_records\": {}, \"hist_count\": {}, \
             \"hist_sum_ns\": {}, \"consistent\": {}}}\n}}\n",
            cons.records,
            cons.segment_sum_ns,
            cons.dur_sum_ns,
            cons.mismatched_records,
            opt(cons.hist_count),
            opt(cons.hist_sum_ns),
            cons.consistent
        );
        out
    }

    /// Render a human-readable Markdown report.
    #[must_use]
    pub fn to_markdown(&self, scenario: &str) -> String {
        let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                "0.0".to_owned()
            } else {
                format!("{:.1}", part as f64 * 100.0 / whole as f64)
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "# Critical-path report — `{scenario}`\n");
        let _ = writeln!(
            out,
            "{} op(s), {} ms total end-to-end latency. Segment shares:\n",
            self.consistency.records,
            ms(self.dur_total_ns)
        );
        out.push_str("| segment | total ms | share % |\n|---|---:|---:|\n");
        for (seg, v) in SEGMENTS.iter().zip(self.totals) {
            let _ = writeln!(out, "| {seg} | {} | {} |", ms(v), pct(v, self.dur_total_ns));
        }
        out.push_str(
            "\n## Per-operation breakdown\n\n\
             | op | count | total ms | p50 ms | p99 ms | client % | network % | \
             queue % | service % | lock % | hit/miss |\n\
             |---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for g in &self.groups {
            let shares: Vec<String> = g
                .segments
                .iter()
                .map(|s| pct(s.total_ns, g.dur_total_ns))
                .collect();
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {}/{} |",
                g.name,
                g.count,
                ms(g.dur_total_ns),
                ms(g.dur_p50_ns),
                ms(g.dur_p99_ns),
                shares.join(" | "),
                g.cache_hits,
                g.cache_misses
            );
        }
        if !self.slowest.is_empty() {
            out.push_str(
                "\n## Slowest chains\n\n\
                 | op | process | track | start ms | dur ms | dominant segment | cache |\n\
                 |---|---|---|---:|---:|---|---|\n",
            );
            for c in &self.slowest {
                let (di, dv) = c
                    .segments
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, v)| (*v, std::cmp::Reverse(i)))
                    .expect("five segments");
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} ({}%) | {} |",
                    c.name,
                    c.process,
                    c.track,
                    ms(c.start_ns),
                    ms(c.dur_ns),
                    SEGMENTS[di],
                    pct(*dv, c.dur_ns),
                    c.cache
                );
            }
        }
        let cons = &self.consistency;
        let _ = writeln!(
            out,
            "\n## Consistency\n\n\
             - records: {} ({} mismatched)\n\
             - segment sum: {} ms, duration sum: {} ms\n\
             - op.latency histogram: {} op(s), {} ms\n\
             - **{}**",
            cons.records,
            cons.mismatched_records,
            ms(cons.segment_sum_ns),
            ms(cons.dur_sum_ns),
            cons.hist_count.map_or("—".to_owned(), |v| v.to_string()),
            cons.hist_sum_ns.map_or("—".to_owned(), ms),
            if cons.consistent {
                "CONSISTENT: segments sum exactly to end-to-end latency"
            } else {
                "INCONSISTENT — attribution invariant violated"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::telemetry::{self, CacheTag, OpRecord};

    fn rec(name: &'static str, dur: u64, segs: [u64; 5], cache: CacheTag) -> OpRecord {
        OpRecord {
            pid: 1,
            tid: 0,
            name,
            id: 0,
            start_ns: 0,
            dur_ns: dur,
            client_ns: segs[0],
            network_ns: segs[1],
            queue_ns: segs[2],
            service_ns: segs[3],
            lock_ns: segs[4],
            cache,
        }
    }

    fn captured(records: Vec<OpRecord>) -> TelemetryReport {
        let ((), report) = telemetry::capture(|| {
            let pid = telemetry::begin_run("test");
            telemetry::name_track(pid, 0, "w0");
            for mut r in records {
                r.pid = pid;
                telemetry::op_record(r);
                telemetry::observe("op.latency", simcore::SimDuration::from_nanos(r.dur_ns));
            }
        });
        report
    }

    #[test]
    fn hand_built_graph_segments_sum_to_latency() {
        let report = captured(vec![
            rec("create", 100, [10, 40, 30, 15, 5], CacheTag::Untagged),
            rec("create", 60, [10, 20, 10, 15, 5], CacheTag::Miss),
            rec("stat", 5, [5, 0, 0, 0, 0], CacheTag::Hit),
        ]);
        let a = analyze(&report, 2);
        assert!(a.consistency.consistent, "{:?}", a.consistency);
        assert_eq!(a.consistency.records, 3);
        assert_eq!(a.consistency.segment_sum_ns, 165);
        assert_eq!(a.consistency.dur_sum_ns, 165);
        assert_eq!(a.consistency.hist_count, Some(3));
        assert_eq!(a.dur_total_ns, 165);
        assert_eq!(a.totals, [25, 60, 40, 30, 10]);
        // groups sorted by total latency: create (160) then stat (5)
        assert_eq!(a.groups[0].name, "create");
        assert_eq!(a.groups[0].count, 2);
        assert_eq!(a.groups[0].cache_misses, 1);
        assert_eq!(a.groups[1].name, "stat");
        assert_eq!(a.groups[1].cache_hits, 1);
        // slowest chain is the 100ns create; top_k truncates to 2
        assert_eq!(a.slowest.len(), 2);
        assert_eq!(a.slowest[0].dur_ns, 100);
        assert_eq!(a.slowest[0].track, "w0");
        assert_eq!(a.slowest[0].segments, [10, 40, 30, 15, 5]);
    }

    #[test]
    fn mismatched_record_flips_consistency() {
        let report = captured(vec![rec(
            "create",
            100,
            [10, 10, 10, 10, 10], // sums to 50, not 100
            CacheTag::Untagged,
        )]);
        let a = analyze(&report, 1);
        assert!(!a.consistency.consistent);
        assert_eq!(a.consistency.mismatched_records, 1);
    }

    #[test]
    fn json_and_markdown_are_deterministic_and_escaped() {
        let report = captured(vec![rec("create", 10, [10, 0, 0, 0, 0], CacheTag::Hit)]);
        let a = analyze(&report, 5);
        let j1 = a.to_json("weird \"name\"\\x");
        let j2 = a.to_json("weird \"name\"\\x");
        assert_eq!(j1, j2);
        assert!(j1.contains("\"scenario\": \"weird \\\"name\\\"\\\\x\""));
        assert!(j1.contains("\"schema\": \"dmetabench.critpath/v1\""));
        assert_eq!(
            j1.matches('{').count(),
            j1.matches('}').count(),
            "balanced braces: {j1}"
        );
        let md = a.to_markdown("s");
        assert!(md.contains("CONSISTENT"));
        assert!(md.contains("| create |"));
    }

    #[test]
    fn empty_report_analyzes_cleanly() {
        let ((), report) = telemetry::capture(|| {});
        let a = analyze(&report, 3);
        assert_eq!(a.consistency.records, 0);
        assert!(a.consistency.consistent);
        assert!(a.groups.is_empty());
        assert!(a.slowest.is_empty());
        let j = a.to_json("empty");
        assert!(j.contains("\"records\": 0"));
    }
}
