//! Weak/isogranular vs. strong scaling problem sizing (paper §3.2.3,
//! Table 3.1).

use serde::{Deserialize, Serialize};

/// One row of the scaling table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Number of processes.
    pub processes: u64,
    /// Weak/isogranular scaling: total operations.
    pub iso_total: u64,
    /// Weak/isogranular scaling: per-process operations.
    pub iso_per_process: u64,
    /// Strong scaling: total operations.
    pub strong_total: u64,
    /// Strong scaling: per-process operations.
    pub strong_per_process: u64,
}

/// Build the Table 3.1 rows for an initial problem size `n`.
///
/// Weak (isogranular) scaling repeats `n` operations in every process;
/// strong scaling divides the fixed total `n` among the processes.
pub fn scaling_table(n: u64, process_counts: &[u64]) -> Vec<ScalingRow> {
    process_counts
        .iter()
        .map(|&p| ScalingRow {
            processes: p,
            iso_total: n * p,
            iso_per_process: n,
            strong_total: n,
            strong_per_process: n / p.max(1),
        })
        .collect()
}

/// Render the table in the paper's layout.
pub fn scaling_table_text(n: u64, process_counts: &[u64]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Weak/isogranular and strong scaling with initial problem size n = {n}\n"
    ));
    out.push_str("Processes | Isogranular total | per-process | Strong total | per-process\n");
    for row in scaling_table(n, process_counts) {
        out.push_str(&format!(
            "{:>9} | {:>17} | {:>11} | {:>12} | {:>11}\n",
            row.processes,
            row.iso_total,
            row.iso_per_process,
            row.strong_total,
            row.strong_per_process
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_3_1() {
        // Table 3.1: n = 6000, processes 1,2,3,4,5,10,100,1000
        let rows = scaling_table(6000, &[1, 2, 3, 4, 5, 10, 100, 1000]);
        assert_eq!(rows[1].iso_total, 12_000);
        assert_eq!(rows[1].strong_per_process, 3_000);
        assert_eq!(rows[4].iso_total, 30_000);
        assert_eq!(rows[4].strong_per_process, 1_200);
        assert_eq!(rows[6].iso_total, 600_000);
        assert_eq!(rows[6].strong_per_process, 60);
        assert_eq!(rows[7].iso_total, 6_000_000);
        assert_eq!(rows[7].strong_per_process, 6);
        for r in &rows {
            assert_eq!(r.iso_per_process, 6000);
            assert_eq!(r.strong_total, 6000);
        }
    }

    #[test]
    fn text_render_contains_rows() {
        let t = scaling_table_text(6000, &[1, 1000]);
        assert!(t.contains("6000000"));
        assert!(t.contains("Processes"));
    }
}
