//! Environment profiling for retrospective analysis (paper §3.2.6).
//!
//! Exact reproduction of results on large systems is often impossible, so
//! DMetabench records the static and dynamic system state *with* every
//! result set — enough to explain anomalies after the fact.

use serde::{Deserialize, Serialize};
use std::time::{SystemTime, UNIX_EPOCH};

/// A snapshot of the runtime environment, stored alongside results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentProfile {
    /// Free-form run label (`--label`).
    pub label: String,
    /// Unix timestamp (seconds) when the profile was taken.
    pub timestamp_s: u64,
    /// Hostname.
    pub hostname: String,
    /// Operating system family.
    pub os: String,
    /// CPU architecture.
    pub arch: String,
    /// Kernel version string (static property).
    pub kernel: String,
    /// Logical CPU count (static property).
    pub cpus: usize,
    /// Total memory in kB, when known (static property).
    pub memory_kb: Option<u64>,
    /// 1-minute load average before the run (dynamic property, the
    /// `vmstat` pre-run sampling of §3.3.3).
    pub loadavg_1m: Option<f64>,
    /// Process command line.
    pub cmdline: Vec<String>,
}

impl EnvironmentProfile {
    /// Capture the current environment.
    pub fn capture(label: &str) -> EnvironmentProfile {
        let kernel = std::fs::read_to_string("/proc/version")
            .map(|s| s.trim().to_owned())
            .unwrap_or_else(|_| "unknown".to_owned());
        let memory_kb = std::fs::read_to_string("/proc/meminfo").ok().and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("MemTotal:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        });
        let loadavg_1m = std::fs::read_to_string("/proc/loadavg")
            .ok()
            .and_then(|s| s.split_whitespace().next().and_then(|v| v.parse().ok()));
        EnvironmentProfile {
            label: label.to_owned(),
            timestamp_s: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            hostname: cluster::hostname(),
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            kernel,
            cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            memory_kb,
            loadavg_1m,
            cmdline: std::env::args().collect(),
        }
    }

    /// Serialize to pretty JSON for the result directory.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile always serializes")
    }

    /// Parse a profile back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the serde error message on malformed input.
    pub fn from_json(text: &str) -> Result<EnvironmentProfile, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_static_fields() {
        let p = EnvironmentProfile::capture("test-run");
        assert_eq!(p.label, "test-run");
        assert!(p.cpus >= 1);
        assert!(!p.hostname.is_empty());
        assert!(!p.os.is_empty());
        assert!(p.timestamp_s > 1_600_000_000, "sane clock");
    }

    #[test]
    fn json_roundtrip() {
        let p = EnvironmentProfile::capture("roundtrip");
        let json = p.to_json();
        let q = EnvironmentProfile::from_json(&json).unwrap();
        assert_eq!(p, q);
        assert!(EnvironmentProfile::from_json("not json").is_err());
    }
}
