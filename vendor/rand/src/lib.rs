//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, fully deterministic implementation of the small API
//! surface it actually uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`.
//!
//! The generator is SplitMix64 — statistically solid for simulation
//! workloads and trivially reproducible. It is *not* the upstream StdRng
//! (ChaCha12); streams differ from upstream rand, which is fine because
//! every consumer in this workspace only requires determinism, not a
//! specific stream.

#![forbid(unsafe_code)]

pub mod rngs {
    /// Deterministic standard RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate nearby seeds.
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seedable construction (subset of upstream trait).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Raw 64-bit output (subset of upstream `RngCore`).
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with `gen_range` (subset of upstream `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Modulo bias is negligible for the spans this workspace uses
                // and irrelevant for determinism.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing sampling methods (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let f: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let _ = r.gen_bool(0.5);
        }
    }
}
