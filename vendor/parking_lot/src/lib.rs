//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Poisoning is swallowed (parking_lot has no poisoning), which is exactly
//! the behaviour callers of the real crate rely on.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
