//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, `Just`, `any::<T>()`,
//! `prop::collection::vec`, `prop_oneof!`, simple `[chars]{m,n}` string
//! patterns, and the `prop_assert*` macros.
//!
//! Differences from upstream: case generation is seeded deterministically
//! (every run explores the same cases), there is **no shrinking** (failures
//! report the full generated input via panic message), and persistence
//! files (`*.proptest-regressions`) are not read — regressions worth
//! keeping are pinned as explicit unit tests instead (see
//! `tests/prop_pipeline.rs` in the workspace root).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy view used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Simple `[class]{m,n}` string pattern strategies (`&str` literals).
///
/// Supports what the workspace uses: one bracketed character class with
/// `a-z` style ranges, followed by an optional `{m,n}` repetition
/// (default exactly 1).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = {
        let body: Vec<char> = rest[..close].chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i], body[i + 2]);
                for c in a..=b {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        out
    };
    if class.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((class, 1, 1));
    }
    let rep = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((class, lo, hi))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
}

/// A `Vec` of strategies generates a `Vec` of values (one per element).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw a value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniformly pick one of several boxed strategies (backs `prop_oneof!`).
pub fn one_of<T>(strategies: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!strategies.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { strategies }
}

/// See [`one_of`].
pub struct OneOf<T> {
    strategies: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.strategies.len());
        self.strategies[k].generate(rng)
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Vec of `elem` values with a length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = self.size.hi - self.size.lo;
                let len = self.size.lo + if span == 0 { 0 } else { rng.below(span) };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Length range for collection strategies (`lo..hi`, half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Runner configuration (subset of upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the deterministic suite quick
        // while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Drive a property: run `body` for each deterministic case seed.
pub fn run_property<F: FnMut(&mut TestRng)>(name: &str, config: &ProptestConfig, mut body: F) {
    for case in 0..config.cases {
        // Deterministic per-test, per-case seed; name-hashed so different
        // properties explore different inputs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng::new(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(&mut rng);
    }
}

/// Failure type used by the `prop_assert*` macros (panic-based here).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The `proptest!` test-definition macro (no-shrink, deterministic).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
            });
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!($($fmt)+);
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!(
                "property assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            );
        }
    }};
}

/// Uniformly choose among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_in_bounds() {
        let mut rng = TestRng::new(1);
        let s = prop::collection::vec(0u64..10, 2..5);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn string_pattern_generates_class_chars() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0u64..100, v in prop::collection::vec(0u8..4, 1..10)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty());
        }
    }
}
