//! Offline stand-in for `serde_derive`.
//!
//! The real crate depends on `syn`/`quote`, which are unavailable without
//! crates.io access, so this macro parses the item declaration by walking
//! the raw token stream and emits impl code as a string. It supports what
//! this workspace derives: non-generic structs (named, tuple, unit) and
//! enums (unit, tuple and struct variants), mapping to the same JSON shapes
//! as upstream serde's default representation:
//!
//! * named struct  -> object
//! * newtype struct -> transparent inner value
//! * tuple struct  -> array
//! * unit variant  -> `"Variant"`
//! * newtype variant -> `{"Variant": value}`
//! * tuple variant -> `{"Variant": [..]}`
//! * struct variant -> `{"Variant": {..}}`
//!
//! `#[serde(...)]` attributes are not supported (the workspace uses none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum variants.
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    body: Body,
}

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic types are not supported (type {name})");
        }
    }
    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("vendored serde_derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("vendored serde_derive: unsupported enum body: {other:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive for '{other}' items"),
    };
    Parsed { name, body }
}

/// Advance past any `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Parse `name: Type, ...` inside a brace group, returning field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("vendored serde_derive: expected field name, got {other}"),
        };
        fields.push(name);
        i += 1;
        // expect ':' then the type; skip tokens until a comma at angle depth 0
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Count the comma-separated fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if idx == tokens.len() - 1 {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("vendored serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // skip to the comma separating variants (handles discriminants too)
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Derive `serde::Serialize` (vendored Value-based flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Body::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::serialize_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::serialize_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("vendored serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (vendored Value-based flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         v.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| ::serde::DeError::new(\
                         ::std::format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "if v.as_object().is_none() {{ \
                 return ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"{name}: expected object, got {{v:?}}\"))); }} \
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_value(v)?))"
        ),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"{name}: expected array\"))?; \
                 if items.len() != {n} {{ \
                 return ::core::result::Result::Err(::serde::DeError::new(\
                 \"{name}: wrong tuple arity\")); }} \
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Unit => format!("::core::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize_value(inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::deserialize_value(&items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                 let items = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::new(\"{name}::{vn}: expected array\"))?; \
                                 if items.len() != {n} {{ \
                                 return ::core::result::Result::Err(::serde::DeError::new(\
                                 \"{name}::{vn}: wrong arity\")); }} \
                                 ::core::result::Result::Ok({name}::{vn}({})) }},",
                                items.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize_value(\
                                         inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                                         .map_err(|e| ::serde::DeError::new(\
                                         ::std::format!(\"{name}::{vn}.{f}: {{e}}\")))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::core::result::Result::Ok(\
                                 {name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ \
                 {} \
                 other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"{name}: unknown variant '{{other}}'\"))), \
                 }}, \
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{ \
                 let (tag, inner) = &fields[0]; \
                 match tag.as_str() {{ \
                 {} \
                 other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"{name}: unknown variant '{{other}}'\"))), \
                 }} \
                 }}, \
                 _ => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"{name}: expected variant, got {{v:?}}\"))), \
                 }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         #[allow(unused_variables)] let v = v;\n\
         {body}\n\
         }}\n\
         }}"
    )
    .parse()
    .expect("vendored serde_derive: generated Deserialize impl must parse")
}
