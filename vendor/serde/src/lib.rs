//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small self-serialization framework with the same *spelling* as serde:
//! `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize, Deserialize}`,
//! and a `serde_json` sibling with `to_string_pretty` / `from_str`.
//!
//! Instead of serde's visitor-based data model, everything funnels through
//! one dynamic [`Value`] tree (null / bool / number / string / array /
//! object). That is dramatically simpler, loses zero-copy performance (fine
//! for result files and baselines), and keeps derived trait impls tiny.

#![forbid(unsafe_code)]

use std::fmt;

/// A dynamically-typed serialized value (the JSON data model).
///
/// Object fields keep declaration order so serialized output is stable and
/// human-diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `u64` (accepts integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::I64(n) => Some(n),
            Value::F64(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Create an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Serialize `self` into the dynamic value tree.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the dynamic value tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// --- primitive impls -------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::new(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::new(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| DeError::new(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for std::sync::Arc<str> {
    fn serialize_value(&self) -> Value {
        Value::Str((**self).to_owned())
    }
}
impl Deserialize for std::sync::Arc<str> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(std::sync::Arc::from)
            .ok_or_else(|| DeError::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::new("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, got {} items", items.len()
                    )));
                }
                Ok(($($t::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

impl<K: ToString + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u64>::deserialize_value(&Value::Null), Ok(None));
        assert_eq!(Some(3u64).serialize_value(), Value::U64(3));
    }

    #[test]
    fn tuple_roundtrip() {
        let v = (1.5f64, 7u64).serialize_value();
        let back = <(f64, u64)>::deserialize_value(&v).unwrap();
        assert_eq!(back, (1.5, 7));
    }
}
