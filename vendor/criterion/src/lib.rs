//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use. Instead of
//! statistical sampling it runs each benchmark closure a small fixed number
//! of iterations and prints mean wall-clock time — enough to eyeball
//! regressions and to keep `cargo bench` compiling without crates.io.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const ITERS: u32 = 10;

/// Benchmark driver (stub).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a named benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks (stub).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Ignored in the stub (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored in the stub (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run a named benchmark closure within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run a parameterized benchmark closure within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Batch-size hint for `iter_batched` (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    total_nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS {
            let t0 = Instant::now();
            black_box(f());
            self.total_nanos += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    /// Time `f` with untimed per-iteration setup.
    pub fn iter_batched<S, O, SF, F>(&mut self, mut setup: SF, mut f: F, _size: BatchSize)
    where
        SF: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            self.total_nanos += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<50} (no iterations)");
        } else {
            let mean = self.total_nanos / self.iters as u128;
            println!(
                "bench {name:<50} {mean:>12} ns/iter (stub, {} iters)",
                self.iters
            );
        }
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
