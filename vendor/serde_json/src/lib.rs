//! Offline stand-in for `serde_json`, over the vendored `serde` Value model.
//!
//! Numbers serialize via Rust's shortest round-trip float formatting, so a
//! `to_string` → `from_str` cycle reproduces every finite `f64` bit-exactly —
//! the property the baseline suite relies on. Non-finite floats serialize as
//! `null` (upstream serde_json does the same) and deserialize back to NaN.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::deserialize_value(&value)?)
}

/// Serialize into the dynamic [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Deserialize from a dynamic [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize_value(value)?)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // {:?} is Rust's shortest round-trip representation
                let s = format!("{n:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // surrogate pairs are not needed for this
                            // workspace's data; map lone surrogates to U+FFFD
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| Error::new(format!("integer out of range: {text}")));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number: {text}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::F64(0.1), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::I64(-7)),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_bits_survive() {
        for &x in &[0.1f64, 1e-9, 22191.333333333332, f64::MAX, -0.0] {
            let mut s = String::new();
            write_value(&mut s, &Value::F64(x), None, 0);
            match parse(&s).unwrap() {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits()),
                Value::U64(y) => assert_eq!(x, y as f64),
                Value::I64(y) => assert_eq!(x, y as f64),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
