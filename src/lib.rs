//! Umbrella crate for the DMetabench reproduction suite.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! directories; all functionality lives in the member crates:
//!
//! * [`simcore`] — deterministic discrete-event simulation engine
//! * [`memfs`] — in-memory POSIX-like file-system substrate
//! * [`netsim`] — network latency/bandwidth model
//! * [`dfs`] — distributed file-system behavioural models (NFS, Lustre, CXFS,
//!   Ontap GX, AFS)
//! * [`cluster`] — node/placement model and the simulated / threaded engines
//! * [`dmetabench`] — the DMetabench benchmark framework itself

pub use cluster;
pub use dfs;
pub use dmetabench;
pub use memfs;
pub use netsim;
pub use simcore;
