//! Disturbance detection with time-interval logging: the paper's central
//! methodological claim (§3.2.5) is that summary numbers hide what
//! per-interval logs reveal. This example plants a hidden disturbance in
//! one of two otherwise identical simulated runs and shows how the COV
//! trace pinpoints it — without being told where (or whether) it happened.
//!
//! ```text
//! cargo run --release --example disturbance_detection
//! ```

use cluster::{Disturbance, SimConfig};
use dfs::NfsFs;
use dmetabench::{preprocess, Preprocessed, ResultSet};
use simcore::{SimDuration, SimTime};

fn run(with_disturbance: bool) -> Preprocessed {
    let mut model = NfsFs::with_defaults();
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(30));
    cfg.node_cores = 1;
    if with_disturbance {
        cfg.disturbances.push(Disturbance::CpuHog {
            node: 2,
            start: SimTime::from_secs(11),
            end: SimTime::from_secs(17),
            weight: 10.0,
        });
    }
    let res = bench_run(&mut model, &cfg);
    let rs = ResultSet::from_run("MakeFiles", 8, 1, &res);
    preprocess(&rs, &[])
}

fn bench_run(model: &mut NfsFs, cfg: &SimConfig) -> cluster::SimRunResult {
    let workers: Vec<cluster::WorkerSpec> =
        (0..8).map(|n| cluster::WorkerSpec::new(n, 0)).collect();
    let streams: Vec<Box<dyn cluster::OpStream>> = workers
        .iter()
        .map(|w| {
            let dir = format!("/bench/n{}", w.node);
            let s: Box<dyn cluster::OpStream> = Box::new(move |i: u64| {
                Some(dfs::MetaOp::Create {
                    path: format!("{dir}/sub{}/f{i}", i / 5000),
                    data_bytes: 0,
                })
            });
            s
        })
        .collect();
    let names: Vec<String> = (0..8).map(|i| format!("node{i}")).collect();
    cluster::run_sim(model, &names, workers, streams, cfg)
}

/// Scan a COV trace for sustained elevation and report the window.
fn detect(pre: &Preprocessed) -> Option<(f64, f64)> {
    let baseline: f64 = {
        let head: Vec<f64> = pre
            .intervals
            .iter()
            .filter(|r| r.timestamp > 1.0 && r.timestamp <= 6.0)
            .map(|r| r.cov)
            .collect();
        head.iter().sum::<f64>() / head.len().max(1) as f64
    };
    let threshold = (baseline * 8.0).max(0.03);
    // Drop warm-up and the final intervals: the run's tail always shows a
    // COV spike when processes stop at slightly different instants (the
    // paper's listing 3.4 shows the same artifact in its last row).
    let usable = &pre.intervals[10..pre.intervals.len().saturating_sub(5)];
    // longest sustained run of elevated COV
    let mut best: Option<(f64, f64)> = None;
    let mut cur: Option<(f64, f64)> = None;
    for r in usable {
        if r.cov > threshold {
            cur = Some(match cur {
                Some((s, _)) => (s, r.timestamp),
                None => (r.timestamp, r.timestamp),
            });
        } else {
            if let Some((s, e)) = cur.take() {
                if best.is_none_or(|(bs, be)| e - s > be - bs) {
                    best = Some((s, e));
                }
            }
        }
    }
    if let Some((s, e)) = cur {
        if best.is_none_or(|(bs, be)| e - s > be - bs) {
            best = Some((s, e));
        }
    }
    best.filter(|(s, e)| e - s >= 1.0)
}

fn main() {
    println!("run A: clean; run B: a CPU hog hits ONE node somewhere. Let's find it.\n");
    let a = run(false);
    let b = run(true);

    for (name, pre) in [("A", &a), ("B", &b)] {
        match detect(pre) {
            Some((s, e)) => {
                println!("run {name}: DISTURBANCE detected — COV elevated from {s:.1}s to {e:.1}s")
            }
            None => println!("run {name}: clean — COV flat for the whole run"),
        }
        println!(
            "         wall-clock average {:.0} ops/s, stonewall {:.0} ops/s",
            pre.wallclock_avg, pre.stonewall_avg
        );
    }

    let (s, e) = detect(&b).expect("the planted hog must be detected");
    assert!(detect(&a).is_none(), "no false positive on the clean run");
    assert!(
        (10.0..=13.0).contains(&s) && (16.0..=19.0).contains(&e),
        "detected window ({s:.1}-{e:.1}) brackets the planted 11-17 s hog"
    );
    println!("\nThe planted window was 11–17 s on node 2 — found from the COV trace alone,");
    println!("while the summary averages of the two runs differ by only a few percent");
    println!("(the paper's argument for time-interval logging, §3.2.5).");
}
