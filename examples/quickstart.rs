//! Quickstart: run a small DMetabench campaign against the simulated
//! NFS/WAFL filer and print the paper-style outputs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cluster::{MpiWorld, Placement, SimConfig};
use dfs::NfsFs;
use dmetabench::{chart, BenchParams, Runner};
use simcore::SimDuration;

fn main() {
    // 1. Describe the "MPI world": 4 nodes × 2 slots, as if launched with
    //    `mpirun -np 8` and a hostfile (paper listing 3.2).
    let world = MpiWorld::uniform(4, 2);
    let placement = Placement::discover(&world);
    println!(
        "discovered {} nodes, master on rank {}, max {} workers per node",
        placement.node_count(),
        placement.master_rank,
        placement.max_ppn()
    );

    // 2. Choose operations and parameters (paper Table 3.4).
    let params = BenchParams {
        operations: vec!["MakeFiles".into(), "StatFiles".into(), "DeleteFiles".into()],
        problem_size: 2_000,
        duration: SimDuration::from_secs(5),
        label: "quickstart".into(),
        ..BenchParams::default()
    };

    // 3. Run the campaign against the simulated NFS filer.
    let campaign = Runner::new(params).run_simulated(
        &placement,
        || Box::new(NfsFs::with_defaults()),
        &SimConfig::default(),
    );

    // 4. The listing-3.5-style summary across every (nodes × ppn) combo.
    println!("\n{}", campaign.summary_tsv());

    // 5. A performance-vs-nodes chart for MakeFiles (paper Fig. 3.13).
    let series = vec![chart::Series::new(
        "MakeFiles on NFS (1 ppn)",
        Runner::nodes_series(&campaign, "MakeFiles", 1),
    )];
    println!("{}", chart::nodes_chart(&series));

    // 6. And the combined time chart of the largest run (paper Fig. 3.11).
    let biggest = campaign
        .results
        .iter()
        .filter(|r| r.operation == "MakeFiles")
        .max_by_key(|r| r.result_set.total_processes())
        .expect("campaign has MakeFiles results");
    println!("{}", chart::time_chart(&biggest.pre));

    // 7. Results can be written out like the original tool writes its
    //    result directory (TSVs + profile.json).
    let dir = std::env::temp_dir().join("dmetabench-quickstart");
    campaign.write_to_dir(&dir).expect("writable temp dir");
    println!("full result set written to {}", dir.display());
}
