//! Benchmark a *real* file system: DMetabench's wall-clock mode drives
//! actual `std::fs` metadata syscalls on a temporary directory, with one
//! worker thread per process and 100 ms interval logging — the same
//! pipeline the simulated runs use.
//!
//! ```text
//! cargo run --release --example real_fs_bench [target-dir]
//! ```
//!
//! Point `target-dir` at a network mount to benchmark a real NFS server
//! exactly the way the paper does.

use cluster::ThreadRunConfig;
use dmetabench::{chart, BenchParams, Runner};
use memfs::StdFs;
use simcore::SimDuration;

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("dmetabench-real-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    println!("benchmarking real directory: {target}");

    let params = BenchParams {
        operations: vec![
            "MakeFiles".into(),
            "StatFiles".into(),
            "OpenCloseFiles".into(),
            "DeleteFiles".into(),
        ],
        problem_size: 3_000,
        duration: SimDuration::from_secs(2),
        ppn_step: 1,
        label: format!("real-fs {target}"),
        ..BenchParams::default()
    };

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);
    let target_for_factory = target.clone();
    let campaign = Runner::new(params).run_real(
        move |_worker| {
            Box::new(StdFs::new(&target_for_factory).expect("writable benchmark directory"))
        },
        max_threads,
        &ThreadRunConfig::default(),
    );

    println!("\n{}", campaign.summary_tsv());

    let series = vec![chart::Series::new(
        "MakeFiles (real fs)",
        Runner::processes_series(&campaign, "MakeFiles"),
    )];
    println!("{}", chart::processes_chart(&series));

    println!("environment profile:\n{}", campaign.profile.to_json());
    let _ = std::fs::remove_dir_all(&target);
}
