//! Compare metadata performance of the five distributed-file-system
//! architectures on an identical workload — the decision the paper's
//! introduction motivates (which file system for which HPC data set,
//! Table 4.1).
//!
//! ```text
//! cargo run --release --example compare_filesystems
//! ```

use cluster::{run_sim, OpStream, SimConfig, WorkerSpec};
use dfs::{AfsFs, CxfsFs, DistFs, LustreFs, MetaOp, NfsFs, OntapGxFs, PvfsFs};
use dmetabench::chart;
use simcore::SimDuration;

type ModelFactory = fn() -> Box<dyn DistFs>;

fn factories() -> Vec<(&'static str, ModelFactory)> {
    vec![
        ("NFS/WAFL", || Box::new(NfsFs::with_defaults())),
        ("Lustre", || Box::new(LustreFs::with_defaults())),
        ("CXFS", || Box::new(CxfsFs::with_defaults())),
        ("Ontap GX", || Box::new(OntapGxFs::with_defaults())),
        ("AFS", || Box::new(AfsFs::with_defaults())),
        ("PVFS2", || Box::new(PvfsFs::with_defaults())),
    ]
}

/// Volume-aware working directory (GX and AFS address volumes by the first
/// path component; spread workers over volumes as a path list would).
fn workdir(fs: &str, node: usize, proc: usize) -> String {
    match fs {
        "Ontap GX" | "AFS" => format!("/vol{}/n{node}p{proc}", (node + proc) % 8),
        _ => format!("/bench/n{node}p{proc}"),
    }
}

fn throughput(name: &str, factory: fn() -> Box<dyn DistFs>, nodes: usize, ppn: usize) -> f64 {
    let mut model = factory();
    let workers: Vec<WorkerSpec> = (0..nodes)
        .flat_map(|n| (0..ppn).map(move |p| WorkerSpec::new(n, p)))
        .collect();
    let streams: Vec<Box<dyn OpStream>> = workers
        .iter()
        .map(|w| {
            let dir = workdir(name, w.node, w.proc);
            let s: Box<dyn OpStream> = Box::new(move |i: u64| {
                Some(MetaOp::Create {
                    path: format!("{dir}/sub{}/f{i}", i / 5000),
                    data_bytes: 0,
                })
            });
            s
        })
        .collect();
    let node_names: Vec<String> = (0..nodes).map(|i| format!("node{i}")).collect();
    let mut cfg = SimConfig::default();
    cfg.duration = Some(SimDuration::from_secs(10));
    run_sim(model.as_mut(), &node_names, workers, streams, &cfg).stonewall_ops_per_sec()
}

fn main() {
    let node_counts = [1usize, 2, 4, 8, 16];
    println!("file creation throughput [ops/s], 1 process per node, 10 s runs\n");
    print!("{:>10}", "nodes");
    for (name, _) in factories() {
        print!("{name:>12}");
    }
    println!();
    let mut all_series = Vec::new();
    for (name, factory) in factories() {
        let pts: Vec<(f64, f64)> = node_counts
            .iter()
            .map(|&n| (n as f64, throughput(name, factory, n, 1)))
            .collect();
        all_series.push(chart::Series::new(name, pts));
    }
    for (row, &n) in node_counts.iter().enumerate() {
        print!("{n:>10}");
        for s in &all_series {
            print!("{:>12.0}", s.points[row].1);
        }
        println!();
    }

    println!("\n{}", chart::nodes_chart(&all_series));
    println!("Observations mirroring the thesis:");
    println!(" * the NVRAM filer (NFS) and the aggregated GX cluster lead at small scale;");
    println!(" * Lustre and CXFS pay their metadata-server round trips but scale across nodes;");
    println!(
        " * AFS sits lowest per node (serializing cache manager) yet still scales out;
 * PVFS2 pays for its cache-free semantics on every operation but scales cleanly."
    );
}
